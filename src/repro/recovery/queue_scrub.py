"""Crash recovery for far queues.

A crashed client can leave a :class:`~repro.core.queue.FarQueue` in three
recoverable states (far memory itself survives, section 2):

1. **Pointer stuck in slack** — the client died between its fast-path
   ``faai``/``saai`` and the wrap-around repair. Any client can finish
   the CAS repair.
2. **Abandoned slack migration** — an enqueuer died after ``saai`` put
   its item in a slack slot but before the item was moved to its wrapped
   array slot. The item is intact in the slack slot; the scrubber
   completes the migration.
3. **Orphaned items** — slots holding values outside the live
   ``[head, tail)`` window: a dequeuer died while holding an armed empty
   claim (its slot got filled later and was never consumed), or died
   before flushing its deferred slot clears. The scrubber re-enqueues
   them.

Case 3 is where semantics are chosen: a slot consumed-but-not-yet-cleared
by a crashed consumer is indistinguishable from a claimed-but-never-
consumed slot, so re-enqueueing gives **at-least-once** delivery — the
standard trade-off for queues without consumer acknowledgement logs.
``ScrubReport.redelivery_possible`` tells the caller when duplicates may
have been introduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.queue import EMPTY, FarQueue
from ..fabric.client import Client
from ..fabric.errors import FarTimeoutError, QueueFull
from ..fabric.wire import WORD, decode_u64, encode_u64


@dataclass
class ScrubReport:
    """What one scrub pass found and fixed."""

    pointers_repaired: int = 0
    migrations_completed: int = 0
    orphans_reenqueued: int = 0
    redelivery_possible: bool = False
    restarts: int = 0
    unrecovered: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the queue needed no repair."""
        return (
            self.pointers_repaired == 0
            and self.migrations_completed == 0
            and self.orphans_reenqueued == 0
            and not self.unrecovered
        )


class QueueScrubber:
    """Repairs a far queue after client crashes.

    Run while the queue is quiescent (no other clients mid-operation):
    recovery after fail-stop crashes is naturally a coordinator task, and
    the scrubber mutates the live window.
    """

    def __init__(self, queue: FarQueue) -> None:
        self.queue = queue
        # Orphan values rescued (slots already cleared) by a pass that was
        # then abandoned on a timeout: they live only in scrubber memory
        # until re-enqueued, so they must survive across restarted passes
        # or recovery itself would lose items.
        self._pending_reenqueue: list[int] = []

    def scrub(
        self,
        client: Client,
        survivors: tuple[Client, ...] = (),
        *,
        max_restarts: int = 2,
    ) -> ScrubReport:
        """One full repair pass; the scrubbing client pays all far accesses.

        Pass the surviving clients in ``survivors``: recovery begins by
        quiescing them (flushing their pending slot clears), because a
        stale blind clear landing *after* the scrubber re-enqueues into
        the same slot would destroy the recovered value.

        Transient-fault tolerant: every repair step is idempotent (repair
        CAS, migrate-if-still-empty, clear-then-reenqueue), so when a
        :class:`~repro.fabric.errors.FarTimeoutError` escapes the
        client's retry budget mid-pass the scrubber simply restarts the
        whole pass — already-completed repairs are no-ops the second time
        — up to ``max_restarts`` times before letting the error
        propagate. ``ScrubReport.restarts`` records how many passes were
        abandoned.
        """
        # One report accumulates across restarted passes: a repair finished
        # before a pass was abandoned is a no-op when re-run, so it is
        # counted exactly once — by the pass that performed it.
        report = ScrubReport()
        last_error: FarTimeoutError | None = None
        for restart in range(max_restarts + 1):
            try:
                self._scrub_pass(client, survivors, report)
            except FarTimeoutError as err:
                last_error = err
                report.restarts = restart + 1
                continue
            return report
        assert last_error is not None
        raise last_error

    def _scrub_pass(
        self,
        client: Client,
        survivors: tuple[Client, ...],
        report: ScrubReport,
    ) -> ScrubReport:
        queue = self.queue
        for survivor in survivors:
            if survivor.alive and survivor.client_id in queue._clients:
                queue.flush_clears(survivor)

        # (1) Pointers stranded in the slack region.
        raw = client.rgather(
            [(queue.head_addr, WORD), (queue.tail_addr, WORD)]
        )
        head = decode_u64(raw[:WORD])
        tail = decode_u64(raw[WORD:])
        for pointer_addr, value in ((queue.head_addr, head), (queue.tail_addr, tail)):
            if value >= queue.slack_base:
                queue._repair_pointer(client, pointer_addr)
                report.pointers_repaired += 1
        if report.pointers_repaired:
            raw = client.rgather(
                [(queue.head_addr, WORD), (queue.tail_addr, WORD)]
            )
            head = decode_u64(raw[:WORD])
            tail = decode_u64(raw[WORD:])

        # (2) Items abandoned in slack slots mid-migration.
        slack_bytes = queue.slack_slots * WORD
        slack = client.read(queue.slack_base, slack_bytes)
        for i in range(queue.slack_slots):
            value = decode_u64(slack[i * WORD : (i + 1) * WORD])
            if value == EMPTY:
                continue
            slack_addr = queue.slack_base + i * WORD
            wrapped = queue._wrapped(slack_addr)
            resident = client.read_u64(wrapped)
            if resident == EMPTY:
                client.wscatter(  # fmlint: disable=FM001 (crash-ordered, one migration at a time)
                    [(wrapped, WORD), (slack_addr, WORD)],
                    encode_u64(value) + encode_u64(EMPTY),
                )
            else:
                # The wrapped slot was already filled (the migration had
                # completed but the slack clear was lost): just clear.
                # fmlint: disable=FM001 (crash-ordered, one migration at a time)
                client.write_u64(slack_addr, EMPTY)
            report.migrations_completed += 1

        # (3) Orphaned values outside the live [head, tail) window.
        head_lp = queue._logical(head)
        tail_lp = queue._logical(tail)
        array = client.read(queue.array_base, queue.capacity * WORD)
        orphans: list[int] = []
        for slot in range(queue.capacity):
            value = decode_u64(array[slot * WORD : (slot + 1) * WORD])
            if value == EMPTY:
                continue
            if self._in_window(slot, head_lp, tail_lp, self.queue.max_clients):
                continue
            orphans.append(slot)
        # Clear every orphan slot first (one scatter), *then* re-enqueue
        # the values: enqueueing first could advance the tail over a
        # not-yet-cleared orphan slot and overwrite it.
        if orphans:
            raw = client.rgather(
                [(queue.array_base + slot * WORD, WORD) for slot in orphans]
            )
            values = [
                decode_u64(raw[i * WORD : (i + 1) * WORD])
                for i in range(len(orphans))
            ]
            self._pending_reenqueue.extend(v for v in values if v != EMPTY)
            client.wscatter(
                [(queue.array_base + slot * WORD, WORD) for slot in orphans],
                encode_u64(EMPTY) * len(orphans),
            )
        # Values are dropped from the pending list only once enqueue
        # returns: a timeout mid-list leaves the remainder staged for the
        # restarted pass (an enqueue that committed before its timeout is
        # re-delivered — at-least-once, never lost).
        while self._pending_reenqueue:
            value = self._pending_reenqueue[0]
            try:
                queue.enqueue(client, value)
                report.orphans_reenqueued += 1
            except QueueFull:
                # No room right now: hand the value back to the caller to
                # re-inject once consumers drain (never silently dropped).
                report.unrecovered.append(value)
            self._pending_reenqueue.pop(0)
        report.redelivery_possible = report.orphans_reenqueued > 0
        return report

    @staticmethod
    def _in_window(slot: int, head_lp: int, tail_lp: int, max_clients: int) -> bool:
        """Is ``slot`` inside the live [head, tail) window (mod capacity)?

        ``head_lp`` past ``tail_lp`` is ambiguous between dequeuer
        overshoot (empty claims) and a wrapped window. The two are
        separable: overshoot is at most ``max_clients`` slots (one armed
        claim per client), while a genuine wrapped window of occupancy
        <= usable capacity implies a difference of at least
        ``2 * max_clients``. Differences in between cannot occur; they are
        treated as a (safe) genuine window."""
        if head_lp == tail_lp:
            return False
        if head_lp < tail_lp:
            return head_lp <= slot < tail_lp
        if head_lp - tail_lp <= max_clients:
            return False  # overshoot: the queue is empty
        return slot >= head_lp or slot < tail_lp

    def recover_crashed_client(
        self,
        queue_client_id: int,
        scrubbing_client: Client,
        survivors: tuple[Client, ...] = (),
    ) -> ScrubReport:
        """Convenience: detach the dead client from the queue, quiesce the
        survivors, then scrub."""
        self.queue.detach_client(queue_client_id)
        return self.scrub(scrubbing_client, survivors=survivors)
