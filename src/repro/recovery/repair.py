"""Crash-stop repair: re-replication with epoch fencing.

A failed memory node (``Fabric.fail_node``) leaves every
:class:`~repro.fabric.replication.ReplicatedRegion` that kept a copy there
one fault domain short: reads fail over and survive, but redundancy is
gone until someone rebuilds the lost replica. With no memory-side
processor, that someone is a *client* — this module is the client-driven
repair protocol the paper's availability argument (section 2) needs to
actually hold over time.

The protocol, per degraded region:

1. **Pick a spare**: the first available node holding none of the
   region's replicas. No spare → :class:`~repro.fabric.errors.AllocationError`
   (redundancy cannot be restored; the caller must know).
2. **Stream-copy** a surviving replica onto the spare through the
   pipelined submission path (``client.batch()`` + unsignaled submits),
   chunk by chunk. Framed regions are copied *verified*: each source
   frame is checksum-checked in near memory, and a corrupt source block
   is healed by :meth:`~repro.fabric.client.Client.read_verified` against
   the remaining replicas (+1 far access per verify-miss) — repair never
   propagates rot. Cost: one read + one write per block, so
   ``2 * block_count`` far accesses plus one per verify-miss.
3. **Fence**: atomically bump the region's far *epoch word*
   (``faa``, +1 far access). Writers check the word before every
   replicated write; a client still holding the pre-repair replica map
   gets :class:`~repro.fabric.errors.StaleEpochError` instead of
   silently writing to memory that is no longer part of the region
   (or skipping the rebuilt copy). :meth:`ReplicatedRegion.rejoin`
   re-reads the epoch and adopts the coordinator's current map.

The fence is also the protocol's publication point: the ``faa`` releases
the coordinator's copy writes, and a writer's fence *read* acquires them
— so any write admitted under the new epoch is ordered after the rebuilt
replica's contents (the offline race detector sees this chain through
the epoch word).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..fabric.client import Client
from ..fabric.errors import AllocationError, NodeUnavailableError
from ..fabric.integrity import frame_block, frame_size, try_unframe
from ..fabric.replication import ReplicatedRegion
from ..fabric.wire import WORD
from ..migration.copy import copy_serial, read_window, write_window

if TYPE_CHECKING:  # pragma: no cover - avoids a package-init import cycle
    from ..alloc import FarAllocator


@dataclass
class RepairReport:
    """What one :meth:`RepairCoordinator.run` pass did."""

    dead_node: int = -1
    regions_scanned: int = 0
    replicas_rebuilt: int = 0
    blocks_copied: int = 0
    bytes_copied: int = 0
    source_verify_misses: int = 0
    epochs_bumped: int = 0
    # (region_id, dead_node, spare_node) per rebuilt replica.
    rebuilt: list[tuple[int, int, int]] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "dead_node": self.dead_node,
            "regions_scanned": self.regions_scanned,
            "replicas_rebuilt": self.replicas_rebuilt,
            "blocks_copied": self.blocks_copied,
            "bytes_copied": self.bytes_copied,
            "source_verify_misses": self.source_verify_misses,
            "epochs_bumped": self.epochs_bumped,
            "rebuilt": list(self.rebuilt),
        }


class RepairCoordinator:
    """Registers replicated regions and rebuilds their lost replicas.

    One coordinator per deployment (it owns the region→epoch-word map).
    Registration allocates each region a far epoch word initialised to 1;
    the region object fences its writes on it from then on. After a node
    failure, ``run(client, dead_node)`` restores full replication for
    every registered region that kept a copy there.

    ``home_node`` places the epoch words. Like any metadata service, the
    protocol assumes *that* node outlives the failures it fences — point
    it away from the nodes under test (the default allocator placement
    lands on node 0, which is usually the first node experiments kill).
    Replicating the fence word itself would need consensus, which
    memory-side hardware cannot provide (section 2).
    """

    def __init__(
        self,
        allocator: "FarAllocator",
        *,
        home_node: Optional[int] = None,
        chunk_blocks: int = 16,
        chunk_bytes: int = 4096,
    ) -> None:
        if chunk_blocks < 1:
            raise ValueError("chunk_blocks must be at least 1")
        if chunk_bytes < WORD:
            raise ValueError(f"chunk_bytes must be at least {WORD}")
        self.allocator = allocator
        self.home_node = home_node
        self.chunk_blocks = chunk_blocks
        self.chunk_bytes = chunk_bytes
        self._regions: dict[int, ReplicatedRegion] = {}
        self._next_region_id = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register(self, client: Client, region: ReplicatedRegion) -> int:
        """Adopt ``region``: allocate its epoch word (one far access to
        initialise it to 1) and switch its writes to fenced mode."""
        if region.epoch_addr is not None:
            raise ValueError("region is already registered with a coordinator")
        from ..alloc import on_node  # deferred: avoids the import cycle

        hint = on_node(self.home_node) if self.home_node is not None else None
        epoch_addr = self.allocator.alloc_words(1, hint)
        client.write_u64(epoch_addr, 1)
        region_id = self._next_region_id
        self._next_region_id += 1
        region.epoch_addr = epoch_addr
        region.epoch = 1
        region.region_id = region_id
        region.coordinator = self
        self._regions[region_id] = region
        # Tell the extent table which extents hold this region's replicas,
        # so live migration never co-locates two fault domains.
        extents = self.allocator.fabric.extents
        for base in region.replicas:
            extents.annotate_replicas(region_id, base, region.size)
        return region_id

    def current_replicas(self, region_id: int) -> tuple[int, ...]:
        """The authoritative replica map (what ``rejoin`` adopts)."""
        return tuple(self._regions[region_id].replicas)

    def regions(self) -> list[ReplicatedRegion]:
        return list(self._regions.values())

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def run(self, client: Client, dead_node: int) -> RepairReport:
        """Rebuild, onto spares, every registered replica that lived on
        ``dead_node``. Idempotent: regions with no copy there are
        untouched (and pay nothing)."""
        fabric = self.allocator.fabric
        report = RepairReport(dead_node=dead_node)
        with client.trace("repair.rebuild", dead_node=dead_node):
            for region in self._regions.values():
                report.regions_scanned += 1
                for index, base in enumerate(region.replicas):
                    if fabric.node_of(base) == dead_node:
                        self._rebuild(client, region, index, report)
                        break  # one replica per node by construction
        return report

    def _pick_spare(self, region: ReplicatedRegion, dead_node: int) -> int:
        fabric = self.allocator.fabric
        occupied = {fabric.node_of(base) for base in region.replicas}
        for node in range(fabric.node_count):
            if node == dead_node or node in occupied:
                continue
            if fabric.node_available(node) and not fabric.extents.is_drained(node):
                return node
        raise AllocationError(
            region.size,
            f"no spare node for region {region.region_id}: every available "
            f"node already holds a replica",
        )

    def _rebuild(
        self,
        client: Client,
        region: ReplicatedRegion,
        dead_index: int,
        report: RepairReport,
    ) -> None:
        from ..alloc import on_node  # deferred: avoids the import cycle

        fabric = self.allocator.fabric
        dead_base = region.replicas[dead_index]
        dead_node = fabric.node_of(dead_base)
        survivors = [
            base
            for i, base in enumerate(region.replicas)
            if i != dead_index and fabric.node_available(fabric.node_of(base))
        ]
        if not survivors:
            # Every copy is gone: surface data loss loudly, never "repair"
            # by inventing bytes.
            raise NodeUnavailableError(
                dead_node,
                dead_base,
            )
        spare_node = self._pick_spare(region, dead_node)
        new_base = self.allocator.alloc(region.size, on_node(spare_node))
        if region.block_payload is not None:
            self._copy_framed(
                client, region, survivors, new_base, dead_node, spare_node, report
            )
        else:
            self._copy_raw(
                client, region, survivors, new_base, dead_node, spare_node, report
            )
        # Publish: swap the map entry, then bump the epoch. The faa is the
        # release point — any writer fenced under the new epoch observes a
        # fully-copied replica.
        region.replicas[dead_index] = new_base
        fabric.extents.clear_replicas(region.region_id, dead_base, region.size)
        fabric.extents.annotate_replicas(region.region_id, new_base, region.size)
        old = client.faa(region.epoch_addr, 1)
        region.epoch = old + 1
        report.replicas_rebuilt += 1
        report.epochs_bumped += 1
        report.rebuilt.append((region.region_id, dead_node, spare_node))
        # The dead copy's address range goes back to the allocator: its
        # metadata is client-side, and the region no longer references it.
        self.allocator.free(dead_base)

    def _copy_framed(
        self,
        client: Client,
        region: ReplicatedRegion,
        survivors: list[int],
        new_base: int,
        dead_node: int,
        spare_node: int,
        report: RepairReport,
    ) -> None:
        """Stream verified frames from the first survivor to the spare,
        ``chunk_blocks`` at a time through one overlap window each way."""
        fsize = frame_size(region.block_payload)
        source = survivors[0]
        fallbacks = survivors[1:]
        total = region.block_count
        done = 0
        while done < total:
            count = min(self.chunk_blocks, total - done)
            offsets = [(done + i) * fsize for i in range(count)]
            frames = read_window(client, [(source + off, fsize) for off in offsets])
            out: list[bytes] = []
            for off, frame in zip(offsets, frames):
                if try_unframe(frame) is not None:
                    out.append(frame)
                    continue
                # Source copy is rotten: heal from the remaining replicas
                # (the verified read re-charges the source read, so the
                # verify-miss costs exactly one extra far access).
                report.source_verify_misses += 1
                targets = [base + off for base in fallbacks] or [source + off]
                version, payload = client.read_verified(
                    targets[0], region.block_payload, fallback=tuple(targets[1:])
                )
                out.append(frame_block(payload, version))
            write_window(
                client,
                [("write", new_base + off, frame) for off, frame in zip(offsets, out)],
            )
            done += count
            nbytes = sum(len(frame) for frame in out)
            report.blocks_copied += count
            report.bytes_copied += nbytes
            if client.tracer is not None:
                client.tracer.on_repair_copy(
                    client,
                    region=region.region_id,
                    dead_node=dead_node,
                    spare_node=spare_node,
                    blocks=count,
                    nbytes=nbytes,
                    done=done,
                    total=total,
                )

    def _copy_raw(
        self,
        client: Client,
        region: ReplicatedRegion,
        survivors: list[int],
        new_base: int,
        dead_node: int,
        spare_node: int,
        report: RepairReport,
    ) -> None:
        """Stream an unframed region byte-for-byte (no verification
        possible — plain regions carry no checksums), chunked through the
        shared serial copy engine (strictly sequential charge profile)."""
        source = survivors[0]
        total = region.size

        def on_chunk(done: int, length: int) -> None:
            report.bytes_copied += length
            if client.tracer is not None:
                client.tracer.on_repair_copy(
                    client,
                    region=region.region_id,
                    dead_node=dead_node,
                    spare_node=spare_node,
                    blocks=0,
                    nbytes=length,
                    done=done,
                    total=total,
                )

        copy_serial(client, source, new_base, total, self.chunk_bytes, on_chunk)
