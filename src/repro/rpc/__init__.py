"""Two-sided RPC substrate and RPC-served data structures (the paper's
distributed-data-structure baseline, sections 1 and 3.1)."""

from .datastructures import RpcMap, RpcQueue, RpcVector
from .server import RpcServer, RpcServerStats

__all__ = ["RpcMap", "RpcQueue", "RpcVector", "RpcServer", "RpcServerStats"]
