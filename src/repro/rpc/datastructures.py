"""RPC-served data structures: the paper's competitor implementations.

These are the "distributed data structures" of section 3: the data lives
in the server's near memory, clients reach it with two-sided RPCs, every
operation is one round trip regardless of structure shape — but every
operation consumes shared server CPU. They are the baselines that far
memory data structures must match on round trips to win (section 3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..fabric.client import Client
from ..fabric.errors import QueueEmpty, QueueFull
from .server import RpcServer


class RpcMap:
    """A key-value map behind an RPC server (one round trip per op)."""

    def __init__(self, server: RpcServer, name: str = "map") -> None:
        self.server = server
        self.name = name
        self._data: dict[int, int] = {}
        server.register(f"{name}.get", self._get)
        server.register(f"{name}.put", self._put)
        server.register(f"{name}.delete", self._delete)

    def _get(self, key: int) -> Optional[int]:
        return self._data.get(key)

    def _put(self, key: int, value: int) -> None:
        self._data[key] = value

    def _delete(self, key: int) -> bool:
        return self._data.pop(key, None) is not None

    def get(self, client: Client, key: int) -> Optional[int]:
        """Look up ``key``: one RPC."""
        return self.server.call(client, f"{self.name}.get", key)

    def put(self, client: Client, key: int, value: int) -> None:
        """Insert/update ``key``: one RPC."""
        self.server.call(client, f"{self.name}.put", key, value)

    def delete(self, client: Client, key: int) -> bool:
        """Remove ``key``: one RPC."""
        return self.server.call(client, f"{self.name}.delete", key)

    def __len__(self) -> int:
        return len(self._data)


class RpcQueue:
    """A FIFO queue behind an RPC server (one round trip per op)."""

    def __init__(
        self, server: RpcServer, name: str = "queue", capacity: Optional[int] = None
    ) -> None:
        self.server = server
        self.name = name
        self.capacity = capacity
        self._items: deque[int] = deque()
        server.register(f"{name}.enqueue", self._enqueue)
        server.register(f"{name}.dequeue", self._dequeue)
        server.register(f"{name}.size", self._size)

    def _enqueue(self, value: int) -> None:
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise QueueFull(f"rpc queue at capacity {self.capacity}")
        self._items.append(value)

    def _dequeue(self) -> int:
        if not self._items:
            raise QueueEmpty("rpc queue empty")
        return self._items.popleft()

    def _size(self) -> int:
        return len(self._items)

    def enqueue(self, client: Client, value: int) -> None:
        """Add an item: one RPC."""
        self.server.call(client, f"{self.name}.enqueue", value)

    def dequeue(self, client: Client) -> int:
        """Remove the oldest item: one RPC; raises QueueEmpty."""
        return self.server.call(client, f"{self.name}.dequeue")

    def try_dequeue(self, client: Client) -> Optional[int]:
        """Non-raising dequeue (still one RPC)."""
        try:
            return self.dequeue(client)
        except QueueEmpty:
            return None

    def size(self, client: Client) -> int:
        """Current length: one RPC."""
        return self.server.call(client, f"{self.name}.size")


class RpcVector:
    """A fixed-length word vector behind an RPC server."""

    def __init__(self, server: RpcServer, length: int, name: str = "vector") -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        self.server = server
        self.name = name
        self.length = length
        self._data = [0] * length
        server.register(f"{name}.get", self._get)
        server.register(f"{name}.set", self._set)
        server.register(f"{name}.add", self._add)
        server.register(f"{name}.read_all", self._read_all)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise IndexError(index)

    def _get(self, index: int) -> int:
        self._check(index)
        return self._data[index]

    def _set(self, index: int, value: int) -> None:
        self._check(index)
        self._data[index] = value

    def _add(self, index: int, delta: int) -> int:
        self._check(index)
        old = self._data[index]
        self._data[index] = (old + delta) & ((1 << 64) - 1)
        return old

    def _read_all(self) -> list[int]:
        return list(self._data)

    def get(self, client: Client, index: int) -> int:
        """Read one element: one RPC."""
        return self.server.call(client, f"{self.name}.get", index)

    def set(self, client: Client, index: int, value: int) -> None:
        """Write one element: one RPC."""
        self.server.call(client, f"{self.name}.set", index, value)

    def add(self, client: Client, index: int, delta: int) -> int:
        """Atomic add (server-side): one RPC; returns the old value."""
        return self.server.call(client, f"{self.name}.add", index, delta)

    def read_all(self, client: Client) -> list[int]:
        """Read the whole vector: one RPC with a large reply."""
        return self.server.call(
            client, f"{self.name}.read_all", reply_bytes=self.length * 8
        )
