"""The two-sided RPC baseline substrate (paper sections 1 and 3.1).

"With distributed data structures, a processor close to the memory can
receive and service RPC requests to access the data structure. Doing so
consumes the local processor, but takes only one round trip over the
fabric."

That sentence is the whole model: an RPC costs the client exactly one
network round trip plus the server's service time — but the server is a
*shared, serial* resource. :class:`RpcServer` implements it as a
virtual-time single-server queue: each request starts when both it has
arrived and the server is free, so under load, queueing delay grows and
throughput saturates at ``1 / service_ns``. One-sided far accesses have no
such shared bottleneck, which is exactly the trade-off ("shipping
computation or data") that experiment E2 sweeps.

Request handlers execute against the server's near memory (plain Python
state); the far-memory pool is not involved — this is the "traditional
memory with two-sided RPC access" side of the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..fabric.client import Client
from ..fabric.errors import RpcError

Handler = Callable[..., Any]


@dataclass
class RpcServerStats:
    """Utilisation view of one RPC server."""

    rpcs: int = 0
    busy_ns: float = 0.0
    total_wait_ns: float = 0.0
    last_done_ns: float = 0.0

    def utilisation(self) -> float:
        """Busy fraction of the server's elapsed timeline."""
        if self.last_done_ns == 0.0:
            return 0.0
        return self.busy_ns / self.last_done_ns

    def mean_wait_ns(self) -> float:
        """Average queueing delay per request."""
        if self.rpcs == 0:
            return 0.0
        return self.total_wait_ns / self.rpcs


class RpcServer:
    """A memory-side processor servicing RPCs serially.

    Args:
        name: label for reporting.
        service_ns: CPU time consumed per request (the default 700 ns is a
            typical small key-value RPC handler; it is the knob that sets
            the server's throughput ceiling).
        one_way_ns: network latency each way. Defaults to half the
            one-sided far access latency, so an uncontended RPC round trip
            costs the same as one far access — the paper's "only one round
            trip over the fabric".
    """

    def __init__(
        self,
        name: str = "rpc-server",
        *,
        service_ns: float = 700.0,
        one_way_ns: float = 500.0,
        byte_ns: float = 1.0,
        inline_bytes: int = 256,
    ) -> None:
        self.name = name
        self.service_ns = service_ns
        self.one_way_ns = one_way_ns
        self.byte_ns = byte_ns
        self.inline_bytes = inline_bytes
        self.stats = RpcServerStats()
        self._handlers: dict[str, Handler] = {}
        self._busy_until_ns = 0.0

    def register(self, op: str, handler: Handler) -> None:
        """Expose ``handler`` as RPC operation ``op``."""
        if op in self._handlers:
            raise RpcError(f"handler {op!r} already registered on {self.name}")
        self._handlers[op] = handler

    def call(
        self,
        client: Client,
        op: str,
        *args: Any,
        request_bytes: int = 64,
        reply_bytes: int = 64,
        service_ns: float | None = None,
    ) -> Any:
        """Issue one RPC from ``client``; returns the handler's result.

        Advances the client's clock across the full round trip including
        any queueing delay behind other clients' requests.
        """
        handler = self._handlers.get(op)
        if handler is None:
            raise RpcError(f"no handler {op!r} on {self.name}")
        cost = service_ns if service_ns is not None else self.service_ns
        wire_ns = self.byte_ns * max(0, request_bytes + reply_bytes - self.inline_bytes)

        arrival_ns = client.clock.now_ns + self.one_way_ns
        start_ns = max(arrival_ns, self._busy_until_ns)
        done_ns = start_ns + cost
        self._busy_until_ns = done_ns

        self.stats.rpcs += 1
        self.stats.busy_ns += cost
        self.stats.total_wait_ns += start_ns - arrival_ns
        self.stats.last_done_ns = done_ns

        client.clock.sync_to(done_ns + self.one_way_ns + wire_ns)
        client.metrics.rpcs += 1
        client.metrics.round_trips += 1
        client.metrics.network_traversals += 2
        client.metrics.rpc_bytes += request_bytes + reply_bytes

        return handler(*args)

    def reset_timeline(self) -> None:
        """Forget queue state (between benchmark phases)."""
        self._busy_until_ns = 0.0
        self.stats = RpcServerStats()

    def __repr__(self) -> str:
        return f"RpcServer({self.name!r}, service_ns={self.service_ns})"
