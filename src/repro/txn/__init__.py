"""Optimistic one-sided transactions over far memory (DESIGN.md §15)."""

from .txn import (
    Transaction,
    TxnAbortError,
    TxnConflictError,
    TxnRecoveryReport,
    TxnSpace,
)

__all__ = [
    "Transaction",
    "TxnAbortError",
    "TxnConflictError",
    "TxnRecoveryReport",
    "TxnSpace",
]
