"""Optimistic one-sided transactions with a crash-recoverable commit.

The paper's structures are each single-op atomic; this module adds
multi-word, multi-structure atomicity in the style of Storm's
transactional dataplane, built entirely from the one-sided primitives
the fabric already meters.

Concurrency control is optimistic (OCC). A :class:`TxnSpace` owns a
table of **version/lock words**, one per hash slot; every transactional
address maps to a slot via its extent (``slot_for_addr``), and every
transactional KV key via its store tag + key hash (``slot_for_key``).
A word is *unlocked* when even (the value is the slot's version) and
*locked* when odd (``(owner_id + 1) << 32 | version + 1``). Reads
record the slot version in the transaction's read set; writes are
buffered locally. Nothing is visible to other clients before commit.

Commit is a pipelined protocol (DESIGN.md §15):

1. **Lock** — one CAS per write slot (sorted order, one completion-
   queue window): ``version -> locked(owner, version)``.
2. **Validate** — one zero-delta FAA per read-only slot, batched in one
   window; the atomic read doubles as a release of the reader's clock
   into the word, so the race detector orders every committed write
   after the reads it invalidates.
3. **Seal** — the whole write set (lock expectations, framed cell
   payloads, KV region pointers) is written as ONE framed commit
   record; the CRC is the seal, so a torn record *is* an unsealed
   record. After the fence behind the seal the transaction is
   logically committed.
4. **Write-back** — dirty cells are grouped into contiguous runs and
   scattered (``wscatter``) with integrity framing; buffered KV pairs
   are applied via ``HTTree.multistore``.
5. **Unlock** — each write slot advances to ``version + 2`` (plain
   writes, pipelined), then the record is cleared to a tombstone.

A crash anywhere mid-commit is recoverable by a
``RepairCoordinator``-style scan (:meth:`TxnSpace.recover`): if the
crashed owner's record is sealed the write set rolls **forward**
(idempotently — already-unlocked slots are skipped), otherwise the
held locks roll **back** to their pre-lock versions; either way no
torn state survives. ``StaleEpochError`` from a migrating extent
aborts the transaction cleanly before the seal (FENCE raises before
any byte moves), so a transaction never writes through a stale
placement.

Far-access cost of a warm cell-only commit (client already
registered), with W write slots, R read-only slots, and C contiguous
dirty runs::

    commit = W (lock CAS) + R (validate FAA) + C (write-back scatters)
             + W (unlocks) + 2 (record seal + clear)

``bench_a11_txn.py`` asserts this formula against the live metrics and
the fmcost certificate. The first commit by a client additionally pays
the registration CAS probe(s); KV write-back adds the index upsert
cost (and bypasses the store's ``ops_counter``/profiler, which price
the non-transactional API).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..analysis.budget import far_budget
from ..fabric.errors import (
    FabricError,
    FarCorruptionError,
    StaleEpochError,
)
from ..fabric.integrity import frame_block, frame_size
from ..fabric.wire import WORD, decode_u64, encode_u64

if TYPE_CHECKING:
    from ..alloc.allocator import FarAllocator, PlacementHint
    from ..fabric.client import Client


class TxnAbortError(FabricError):
    """The transaction aborted; ``retryable`` says whether a fresh
    attempt can succeed (conflicts and epoch fences: yes; a write set
    that overflows the commit record: no)."""

    def __init__(
        self,
        reason: str,
        *,
        slot: Optional[int] = None,
        retryable: bool = True,
    ) -> None:
        detail = f" (slot {slot})" if slot is not None else ""
        super().__init__(f"transaction aborted: {reason}{detail}")
        self.reason = reason
        self.slot = slot
        self.retryable = retryable


class TxnConflictError(TxnAbortError):
    """Optimistic validation failed: a slot in the read or write set
    changed (or was locked) since the transaction first observed it."""


@dataclass
class _KvWrite:
    """A buffered transactional KV put (region already written, index
    pointer deferred to commit write-back)."""

    store: Any
    key: str
    key_hash: int
    value: bytes
    region: int
    slot: int


@dataclass
class Transaction:
    """A single optimistic attempt: read set + buffered write set.

    ``snapshots`` maps version-word slot -> the even version observed
    when the transaction first touched the slot; ``cell_writes`` maps
    framed-cell address -> buffered payload; ``kv_puts`` maps
    ``(store_tag, key_hash)`` -> buffered KV write.
    """

    txn_id: int
    client_id: int
    attempt: int = 1
    state: str = "open"
    abort_reason: Optional[str] = None
    snapshots: dict[int, int] = field(default_factory=dict)
    cell_writes: dict[int, bytes] = field(default_factory=dict)
    kv_puts: dict[tuple[int, int], _KvWrite] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return self.state == "open"

    @property
    def read_only(self) -> bool:
        return not self.cell_writes and not self.kv_puts

    def buffer_kv(
        self,
        *,
        store: Any,
        key: str,
        key_hash: int,
        value: bytes,
        region: int,
        slot: int,
    ) -> None:
        """Record a buffered KV put (called by ``FarKVStore.txn_*``; the
        region bytes are already written, the index pointer is deferred
        to commit write-back)."""
        self.kv_puts[(store.txn_tag, key_hash)] = _KvWrite(
            store=store,
            key=key,
            key_hash=key_hash,
            value=value,
            region=region,
            slot=slot,
        )


@dataclass
class TxnRecoveryReport:
    """What :meth:`TxnSpace.recover` found and did for one owner."""

    owner_id: int
    action: str  # "none" | "rollback" | "rollforward"
    slots_released: int = 0
    cells_written: int = 0
    kv_replayed: int = 0


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: deterministic slot hashing (never Python's
    salted ``hash``, which would desynchronise slots across runs)."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


_VERSION_MASK = 0xFFFFFFFF


class TxnSpace:
    """A shared arena of version/lock words + per-client commit records.

    One space serializes transactions over any set of framed cells
    (:meth:`init_cell`) and any transactional :class:`FarKVStore` ops
    routed through it. All state lives in far memory; any client that
    can reach the fabric can run, commit, and *recover* transactions.
    """

    def __init__(
        self,
        allocator: "FarAllocator",
        *,
        table: int,
        n_slots: int,
        reg_base: int,
        max_clients: int,
        records_base: int,
        record_capacity: int,
    ) -> None:
        self.allocator = allocator
        self.table = table
        self.n_slots = n_slots
        self.reg_base = reg_base
        self.max_clients = max_clients
        self.records_base = records_base
        self.record_capacity = record_capacity
        self.extent_size = allocator.fabric.extents.extent_size
        # client_id -> registration slot (a local cache of a far claim).
        self._reg_slots: dict[int, int] = {}
        self._next_seq = 0
        # Crash-injection seam for the recovery tests: called with
        # (phase, client) at "before_lock" / "after_lock" /
        # "after_seal" / "mid_writeback". No-op in production.
        self.crash_hook: Optional[Callable[[str, "Client"], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        allocator: "FarAllocator",
        client: "Client",
        *,
        n_slots: int = 64,
        max_clients: int = 8,
        record_capacity: int = 2048,
        hint: Optional["PlacementHint"] = None,
    ) -> "TxnSpace":
        """Provision the version-word table, the registration array and
        the commit-record slab (two far writes zero the hot words; the
        record slab needs none — an all-zero frame never verifies, which
        reads as "no sealed record")."""
        table = allocator.alloc_words(n_slots, hint)
        reg_base = allocator.alloc_words(max_clients, hint)
        records_base = allocator.alloc(
            max_clients * frame_size(record_capacity), hint
        )
        client.write(table, bytes(n_slots * WORD))
        client.write(reg_base, bytes(max_clients * WORD))
        return cls(
            allocator,
            table=table,
            n_slots=n_slots,
            reg_base=reg_base,
            max_clients=max_clients,
            records_base=records_base,
            record_capacity=record_capacity,
        )

    @far_budget(None)
    def register(self, client: "Client") -> int:
        """Claim (or re-find) this client's registration slot, which
        names its commit-record address. Cached locally after the first
        call; the far claim survives the client crashing, so recovery
        can locate the crashed owner's record."""
        cached = self._reg_slots.get(client.client_id)
        if cached is not None:
            return cached
        marker = client.client_id + 1
        for index in range(self.max_clients):
            old, ok = client.cas(self.reg_base + index * WORD, 0, marker)
            if ok or old == marker:
                self._reg_slots[client.client_id] = index
                return index
        raise TxnAbortError("registration_full", retryable=False)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def version_addr(self, slot: int) -> int:
        """Far address of a slot's version/lock word."""
        return self.table + slot * WORD

    def record_addr(self, reg_slot: int) -> int:
        """Far address of a registered client's commit-record frame."""
        return self.records_base + reg_slot * frame_size(self.record_capacity)

    def slot_for_addr(self, address: int) -> int:
        """Version-word slot guarding ``address`` (per-extent mapping:
        every cell in one extent shares a slot, so a migrating extent
        conflicts as a unit)."""
        return _mix64(address // self.extent_size) % self.n_slots

    def slot_for_key(self, store_tag: int, key_hash: int) -> int:
        """Version-word slot guarding one KV key of one store."""
        return _mix64(store_tag ^ _mix64(key_hash)) % self.n_slots

    @staticmethod
    def locked_word(owner_id: int, version: int) -> int:
        """The odd lock encoding: owner in the high half, version+1 low."""
        return ((owner_id + 1) << 32) | ((version + 1) & _VERSION_MASK)

    # ------------------------------------------------------------------
    # Transaction body
    # ------------------------------------------------------------------

    def begin(self, client: "Client", *, attempt: int = 1) -> Transaction:
        """Open a transaction (purely local: no far access)."""
        self._next_seq += 1
        txn = Transaction(
            txn_id=((client.client_id + 1) << 20) | (self._next_seq & 0xFFFFF),
            client_id=client.client_id,
            attempt=attempt,
        )
        tracer = client._tracer
        if tracer is not None:
            tracer.on_txn_begin(client, txn_id=txn.txn_id, attempt=attempt)
        return txn

    @far_budget(1, ceiling=1)
    def init_cell(self, client: "Client", address: int, payload: bytes) -> None:
        """Seed a framed cell outside any transaction (one far write).
        The cell occupies ``frame_size(len(payload))`` bytes."""
        client.write_framed(address, payload, version=0)

    @far_budget(0, ceiling=1)
    def track_slot(self, client: "Client", txn: Transaction, slot: int) -> int:
        """Record ``slot``'s current version in the read set (one FAA;
        free if already tracked). The zero-delta FAA is atomic on the
        version word, which *releases* everything this client read so
        far into the word — a later writer's lock CAS acquires it, so
        committed writes are ordered after the reads they invalidate."""
        self._require_open(txn)
        prior = txn.snapshots.get(slot)
        if prior is not None:
            return prior
        try:
            word = client.faa(self.version_addr(slot), 0)
        except StaleEpochError as err:
            self._abort_for(client, txn, "stale_epoch", err)
        if word & 1:
            self._conflict(client, txn, "locked", slot)
        txn.snapshots[slot] = word
        return word

    @far_budget(0, ceiling=2)
    def read(
        self, client: "Client", txn: Transaction, address: int, payload_len: int
    ) -> bytes:
        """Transactionally read a framed cell: buffered writes are
        returned directly (read-your-writes, no far access); otherwise
        one verified read + the slot's tracking FAA."""
        self._require_open(txn)
        buffered = txn.cell_writes.get(address)
        if buffered is not None:
            return buffered
        slot = self.slot_for_addr(address)
        revalidate = slot in txn.snapshots
        try:
            _, payload = client.read_verified(address, payload_len)
        except StaleEpochError as err:
            self._abort_for(client, txn, "stale_epoch", err)
        if revalidate:
            # The slot was already tracked: the cell read above is only
            # serializable if the slot still holds the snapshot version.
            try:
                word = client.faa(self.version_addr(slot), 0)
            except StaleEpochError as err:
                self._abort_for(client, txn, "stale_epoch", err)
            if word != txn.snapshots[slot]:
                self._conflict(client, txn, "version_changed", slot)
        else:
            self.track_slot(client, txn, slot)
        return payload

    @far_budget(0, ceiling=1)
    def write(
        self, client: "Client", txn: Transaction, address: int, payload: bytes
    ) -> None:
        """Buffer a framed-cell write (visible to this transaction's own
        reads only). The slot is tracked so commit knows the version its
        lock CAS must expect."""
        self._require_open(txn)
        self.track_slot(client, txn, self.slot_for_addr(address))
        txn.cell_writes[address] = bytes(payload)

    def abort(
        self, client: "Client", txn: Transaction, *, reason: str = "user"
    ) -> None:
        """Abort: drop buffered writes, free any buffered KV regions
        (they were never reachable), count + trace. No far access."""
        if not txn.is_open:
            return
        txn.state = "aborted"
        txn.abort_reason = reason
        for write in txn.kv_puts.values():
            write.store.blobs.allocator.free(write.region)
        client.metrics.txn_aborts += 1
        tracer = client._tracer
        if tracer is not None:
            tracer.on_txn_abort(
                client, txn_id=txn.txn_id, reason=reason, attempt=txn.attempt
            )

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------

    @far_budget(0, claim="C2")
    def commit(self, client: "Client", txn: Transaction) -> None:
        """Run the three-phase commit (module docstring has the cost
        formula). Pre-seal failures abort cleanly (locks restored);
        once the record's fence lands the transaction is logically
        committed and any later crash is completed by :meth:`recover`.
        """
        self._require_open(txn)
        if not txn.snapshots and txn.read_only:
            self._finish_commit(client, txn, runs=0)
            return
        write_slots = self._write_slots(txn)
        read_only = sorted(set(txn.snapshots) - set(write_slots))
        reg_slot = 0
        record = b""
        if write_slots:
            # Encode + register BEFORE taking any lock: an oversized
            # write set aborts with nothing to undo, and a crash while
            # holding locks is guaranteed to leave a registration slot
            # recovery can find the commit record by.
            try:
                record = self._encode_record(txn, write_slots)
                reg_slot = self.register(client)
            except TxnAbortError as err:
                self.abort(client, txn, reason=err.reason)
                raise

        acquired: list[tuple[int, int]] = []
        self._checkpoint("before_lock", client)
        if write_slots:
            acquired = self._lock_phase(client, txn, write_slots)
        self._checkpoint("after_lock", client)
        self._validate_phase(client, txn, read_only, write_slots, acquired)
        if not write_slots:
            self._finish_commit(client, txn, runs=0)
            return

        try:
            client.write_framed(
                self.record_addr(reg_slot), record, version=txn.txn_id
            )
            client.fence()  # the seal: past this point we roll forward
        except StaleEpochError as err:
            # FENCE raises before any byte moves: the seal never landed.
            self._release(client, acquired)
            self._abort_for(client, txn, "stale_epoch", err)
        self._checkpoint("after_seal", client)

        runs = self._writeback_phase(client, txn)
        self._apply_kv(client, txn)
        client.fence()  # write-back durable before the locks advance
        unlocks = [
            client.submit(
                "write_u64", self.version_addr(slot), expected + 2, signaled=False
            )
            for slot, expected in acquired
        ]
        for future in unlocks:
            future.result()
        client.write_framed(
            self.record_addr(reg_slot), bytes(self.record_capacity), version=0
        )
        self._finish_commit(client, txn, runs=runs)

    def _finish_commit(self, client: "Client", txn: Transaction, *, runs: int) -> None:
        txn.state = "committed"
        client.metrics.txn_commits += 1
        tracer = client._tracer
        if tracer is not None:
            tracer.on_txn_commit(
                client,
                txn_id=txn.txn_id,
                cells=len(txn.cell_writes),
                kv_pairs=len(txn.kv_puts),
                runs=runs,
            )

    def _write_slots(self, txn: Transaction) -> list[int]:
        slots = {self.slot_for_addr(addr) for addr in txn.cell_writes}
        slots.update(write.slot for write in txn.kv_puts.values())
        missing = slots - set(txn.snapshots)
        assert not missing, f"write slots without snapshots: {missing}"
        return sorted(slots)

    def _lock_phase(
        self, client: "Client", txn: Transaction, write_slots: list[int]
    ) -> list[tuple[int, int]]:
        """CAS every write slot from its snapshot version to the locked
        word, pipelined in one window. On any conflict or fabric fault
        the acquired subset is restored and the transaction aborts."""
        pending = []
        for slot in write_slots:
            expected = txn.snapshots[slot]
            pending.append(
                (
                    slot,
                    expected,
                    client.submit(
                        "cas",
                        self.version_addr(slot),
                        expected,
                        self.locked_word(txn.client_id, expected),
                        signaled=False,
                    ),
                )
            )
        acquired: list[tuple[int, int]] = []
        conflict_slot: Optional[int] = None
        fault: Optional[FabricError] = None
        for slot, expected, future in pending:
            try:
                _, ok = future.result()
            except FabricError as err:
                # Captured, not swallowed: re-raised as TxnAbortError
                # below, after the acquired locks are restored.
                fault = err
                continue
            if ok:
                acquired.append((slot, expected))
            elif conflict_slot is None:
                conflict_slot = slot
        if fault is not None or conflict_slot is not None:
            self._release(client, acquired)
            if fault is not None:
                reason = (
                    "stale_epoch"
                    if isinstance(fault, StaleEpochError)
                    else "fabric_fault"
                )
                self._abort_for(client, txn, reason, fault)
            self._conflict(client, txn, "lock_failed", conflict_slot)
        return acquired

    def _validate_phase(
        self,
        client: "Client",
        txn: Transaction,
        read_only: list[int],
        write_slots: list[int],
        acquired: list[tuple[int, int]],
    ) -> None:
        """Re-read every read-only slot's version word (zero-delta FAAs,
        one window); any drift from the snapshot aborts. Write slots
        need no re-check — their lock CAS validated atomically."""
        pending = [
            (
                slot,
                client.submit(
                    "faa", self.version_addr(slot), 0, signaled=False
                ),
            )
            for slot in read_only
        ]
        stale_slot: Optional[int] = None
        fault: Optional[FabricError] = None
        for slot, future in pending:
            try:
                word = future.result()
            except FabricError as err:
                # Captured, not swallowed: re-raised as TxnAbortError
                # below, after the acquired locks are restored.
                fault = err
                continue
            if word != txn.snapshots[slot] and stale_slot is None:
                stale_slot = slot
        ok = fault is None and stale_slot is None
        tracer = client._tracer
        if tracer is not None:
            tracer.on_txn_validate(
                client,
                txn_id=txn.txn_id,
                read_slots=len(read_only),
                write_slots=len(write_slots),
                ok=ok,
            )
        if not ok:
            self._release(client, acquired)
            if fault is not None:
                reason = (
                    "stale_epoch"
                    if isinstance(fault, StaleEpochError)
                    else "fabric_fault"
                )
                self._abort_for(client, txn, reason, fault)
            self._conflict(client, txn, "version_changed", stale_slot)

    def _writeback_phase(self, client: "Client", txn: Transaction) -> int:
        """Scatter the buffered cells as framed blocks, one ``wscatter``
        per *contiguous ascending run* (exact address coverage, so the
        race detector's write smear matches what was written)."""
        runs = self._runs(txn)
        futures = []
        for index, (iovec, data) in enumerate(runs):
            if index:
                self._checkpoint("mid_writeback", client)
            futures.append(client.submit("wscatter", iovec, data, signaled=False))
        for future in futures:
            future.result()
        return len(runs)

    def _runs(self, txn: Transaction) -> list[tuple[list[tuple[int, int]], bytes]]:
        runs: list[tuple[list[tuple[int, int]], bytes]] = []
        iovec: list[tuple[int, int]] = []
        data = bytearray()
        next_addr: Optional[int] = None
        for addr in sorted(txn.cell_writes):
            payload = txn.cell_writes[addr]
            version = txn.snapshots[self.slot_for_addr(addr)] + 2
            frame = frame_block(payload, version)
            if next_addr is not None and addr != next_addr:
                runs.append((iovec, bytes(data)))
                iovec, data = [], bytearray()
            iovec.append((addr, len(frame)))
            data += frame
            next_addr = addr + len(frame)
        if iovec:
            runs.append((iovec, bytes(data)))
        return runs

    def _apply_kv(self, client: "Client", txn: Transaction) -> None:
        """Flip the buffered KV index pointers (the regions were written
        at buffer time and fenced with the seal; one ``multistore`` per
        store makes them reachable)."""
        by_tag: dict[int, tuple[Any, list[tuple[int, int]]]] = {}
        for (tag, key_hash), write in sorted(txn.kv_puts.items()):
            _, pairs = by_tag.setdefault(tag, (write.store, []))
            pairs.append((key_hash, write.region))
        for tag in sorted(by_tag):
            store, pairs = by_tag[tag]
            store.index.multistore(client, pairs)

    def _release(
        self, client: "Client", acquired: list[tuple[int, int]]
    ) -> None:
        """Best-effort restore of pre-lock versions on the abort path
        (ABA-safe: nothing is written before the seal, so restoring the
        identical even version is correct)."""
        if not acquired:
            return
        try:
            futures = [
                client.submit(
                    "write_u64", self.version_addr(slot), expected, signaled=False
                )
                for slot, expected in acquired
            ]
            for future in futures:
                future.result()
        except FabricError:
            # Advisory: if the fabric is unreachable the locks stay held
            # and recover() rolls them back from the (unsealed) record.
            pass

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    @far_budget(None, claim="C2")
    @contextmanager
    def transaction(
        self, client: "Client", *, attempt: int = 1
    ) -> Iterator[Transaction]:
        """Single-attempt transaction scope: commit on clean exit, abort
        on any exception. Compose with :meth:`run` for bounded retry."""
        txn = self.begin(client, attempt=attempt)
        try:
            yield txn
        except BaseException:
            self.abort(client, txn, reason="exception")
            raise
        self.commit(client, txn)

    @far_budget(None, claim="C2")
    def run(
        self,
        client: "Client",
        fn: Callable[[Transaction], Any],
        *,
        max_attempts: int = 8,
        base_backoff_ns: int = 2_000,
        max_backoff_ns: int = 200_000,
    ) -> Any:
        """Run ``fn(txn)`` with bounded abort/retry. Conflicts back off
        exponentially with deterministic jitter; the backoff is charged
        through the client's clock the same way the fabric retry ladder
        charges its own, so it folds into the op's window charge."""
        last: Optional[TxnAbortError] = None
        for attempt in range(1, max_attempts + 1):
            txn = self.begin(client, attempt=attempt)
            try:
                result = fn(txn)
                self.commit(client, txn)
                return result
            except TxnAbortError as err:
                self.abort(client, txn, reason=err.reason)
                if not err.retryable:
                    raise
                last = err
                if attempt < max_attempts:
                    backoff = min(
                        base_backoff_ns * (1 << (attempt - 1)), max_backoff_ns
                    )
                    jitter = (
                        (client.client_id * 1_000_003 + attempt * 7_919) % 997
                    ) / 997.0
                    delay = backoff * (0.5 + 0.5 * jitter)
                    client.metrics.retries += 1
                    client.metrics.backoff_ns += int(delay)
                    client._advance(delay)
        assert last is not None
        raise last

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @far_budget(None)
    def recover(
        self,
        client: "Client",
        owner_id: int,
        *,
        stores: Optional[dict[int, Any]] = None,
    ) -> TxnRecoveryReport:
        """Complete or undo a crashed owner's in-flight commit.

        RepairCoordinator-style scan: one batched read each of the
        registration array and the version-word table finds the locks
        the owner still holds; the owner's commit record decides the
        direction. Sealed (CRC verifies, nonzero sequence) -> roll
        **forward**: rewrite the recorded cells whose slots are still
        locked, replay the recorded KV pairs (``stores`` maps store tag
        -> FarKVStore) when no unlock had started, then advance those
        locks. Unsealed or torn -> roll **back**: restore every held
        lock to its pre-lock version (the write set never touched far
        memory before the seal). Idempotent: already-unlocked slots are
        skipped, so recovering twice (or racing a slow-but-alive owner's
        own completion) is harmless.
        """
        reg = client.read(self.reg_base, self.max_clients * WORD)
        reg_slot = None
        for index in range(self.max_clients):
            if decode_u64(reg[index * WORD : (index + 1) * WORD]) == owner_id + 1:
                reg_slot = index
                break
        if reg_slot is None:
            return TxnRecoveryReport(owner_id=owner_id, action="none")

        table = client.read(self.table, self.n_slots * WORD)
        held: dict[int, int] = {}
        for slot in range(self.n_slots):
            word = decode_u64(table[slot * WORD : (slot + 1) * WORD])
            if word & 1 and (word >> 32) == owner_id + 1:
                held[slot] = (word & _VERSION_MASK) - 1

        sealed = None
        try:
            seq, payload = client.read_verified(
                self.record_addr(reg_slot), self.record_capacity
            )
            if seq:
                sealed = self._decode_record(payload)
        except FarCorruptionError:
            sealed = None  # torn or never-written record == unsealed

        if sealed is None and not held:
            return TxnRecoveryReport(owner_id=owner_id, action="none")

        report = TxnRecoveryReport(
            owner_id=owner_id,
            action="rollback" if sealed is None else "rollforward",
        )
        if sealed is None:
            futures = [
                client.submit(
                    "write_u64", self.version_addr(slot), expected, signaled=False
                )
                for slot, expected in sorted(held.items())
            ]
            for future in futures:
                future.result()
            report.slots_released = len(held)
            client.metrics.txn_rollbacks += 1
        else:
            locks, cells, kv_entries = sealed
            still = {
                slot: expected
                for slot, expected in locks
                if held.get(slot) == expected
            }
            targets = [
                (addr, payload)
                for addr, payload in cells
                if self.slot_for_addr(addr) in still
            ]
            # Read each cell before rewriting it: the read observes —
            # and therefore orders the rewrite after — any write-back
            # the crashed owner already landed there, so the idempotent
            # rewrite is synchronized, not a blind overwrite.
            reads = [
                client.submit(
                    "read", addr, frame_size(len(payload)), signaled=False
                )
                for addr, payload in targets
            ]
            for future in reads:
                future.result()
            writes = []
            for addr, payload in targets:
                frame = frame_block(payload, still[self.slot_for_addr(addr)] + 2)
                writes.append(
                    client.submit("write", addr, frame, signaled=False)
                )
                report.cells_written += 1
            for future in writes:
                future.result()
            if kv_entries and len(still) == len(locks):
                # No unlock had started, so the KV pointers may be
                # missing; replaying the multistore is idempotent.
                stores = stores or {}
                by_tag: dict[int, list[tuple[int, int]]] = {}
                for tag, key_hash, region in kv_entries:
                    by_tag.setdefault(tag, []).append((key_hash, region))
                for tag in sorted(by_tag):
                    if tag not in stores:
                        raise ValueError(
                            f"sealed record references store tag {tag}; "
                            "pass stores={tag: FarKVStore} to recover it"
                        )
                    stores[tag].index.multistore(client, by_tag[tag])
                    report.kv_replayed += len(by_tag[tag])
            client.fence()  # rolled-forward bytes land before the unlocks
            futures = [
                client.submit(
                    "write_u64",
                    self.version_addr(slot),
                    expected + 2,
                    signaled=False,
                )
                for slot, expected in sorted(still.items())
            ]
            for future in futures:
                future.result()
            report.slots_released = len(still)
            client.metrics.txn_rollforwards += 1

        client.write_framed(
            self.record_addr(reg_slot), bytes(self.record_capacity), version=0
        )
        return report

    # ------------------------------------------------------------------
    # Commit record codec
    # ------------------------------------------------------------------

    def _encode_record(self, txn: Transaction, write_slots: list[int]) -> bytes:
        """``seq | locks | framed-cell payloads | kv triples``, padded to
        ``record_capacity`` (fixed-size frames keep the tombstone and
        the sealed record byte-compatible at the reader)."""
        parts = [encode_u64(txn.txn_id), encode_u64(len(write_slots))]
        for slot in write_slots:
            parts.append(encode_u64(slot))
            parts.append(encode_u64(txn.snapshots[slot]))
        parts.append(encode_u64(len(txn.cell_writes)))
        for addr in sorted(txn.cell_writes):
            payload = txn.cell_writes[addr]
            parts.append(encode_u64(addr))
            parts.append(encode_u64(len(payload)))
            parts.append(payload)
        parts.append(encode_u64(len(txn.kv_puts)))
        for (tag, key_hash), write in sorted(txn.kv_puts.items()):
            parts.append(encode_u64(tag))
            parts.append(encode_u64(key_hash))
            parts.append(encode_u64(write.region))
        blob = b"".join(parts)
        if len(blob) > self.record_capacity:
            raise TxnAbortError(
                f"record_overflow ({len(blob)} > {self.record_capacity} bytes)",
                retryable=False,
            )
        return blob + bytes(self.record_capacity - len(blob))

    @staticmethod
    def _decode_record(
        payload: bytes,
    ) -> tuple[
        list[tuple[int, int]],
        list[tuple[int, bytes]],
        list[tuple[int, int, int]],
    ]:
        offset = WORD  # seq (authoritative copy is the frame version)
        n_locks = decode_u64(payload[offset : offset + WORD])
        offset += WORD
        locks = []
        for _ in range(n_locks):
            slot = decode_u64(payload[offset : offset + WORD])
            expected = decode_u64(payload[offset + WORD : offset + 2 * WORD])
            locks.append((slot, expected))
            offset += 2 * WORD
        n_cells = decode_u64(payload[offset : offset + WORD])
        offset += WORD
        cells = []
        for _ in range(n_cells):
            addr = decode_u64(payload[offset : offset + WORD])
            length = decode_u64(payload[offset + WORD : offset + 2 * WORD])
            offset += 2 * WORD
            cells.append((addr, payload[offset : offset + length]))
            offset += length
        n_kv = decode_u64(payload[offset : offset + WORD])
        offset += WORD
        kv_entries = []
        for _ in range(n_kv):
            tag = decode_u64(payload[offset : offset + WORD])
            key_hash = decode_u64(payload[offset + WORD : offset + 2 * WORD])
            region = decode_u64(payload[offset + 2 * WORD : offset + 3 * WORD])
            kv_entries.append((tag, key_hash, region))
            offset += 3 * WORD
        return locks, cells, kv_entries

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _checkpoint(self, phase: str, client: "Client") -> None:
        if self.crash_hook is not None:
            self.crash_hook(phase, client)

    @staticmethod
    def _require_open(txn: Transaction) -> None:
        if not txn.is_open:
            raise TxnAbortError(
                f"transaction already {txn.state}", retryable=False
            )

    def _conflict(
        self,
        client: "Client",
        txn: Transaction,
        reason: str,
        slot: Optional[int],
    ) -> None:
        client.metrics.txn_conflicts += 1
        self.abort(client, txn, reason=reason)
        raise TxnConflictError(reason, slot=slot)

    def _abort_for(
        self, client: "Client", txn: Transaction, reason: str, cause: Exception
    ) -> None:
        self.abort(client, txn, reason=reason)
        raise TxnAbortError(reason) from cause
