"""Workload generators: key distributions, operation mixes, metric streams."""

from .keydist import Hotspot, KeyDistribution, Sequential, Uniform, Zipf
from .metric_stream import MetricStream
from .ycsb import (
    YcsbWorkload,
    names as ycsb_names,
    operations as ycsb_operations,
    workload as ycsb_workload,
)
from .opmix import (
    READ_MOSTLY,
    READ_ONLY,
    WRITE_HEAVY,
    Op,
    OperationMix,
    OpKind,
    generate,
)

__all__ = [
    "Hotspot",
    "KeyDistribution",
    "Sequential",
    "Uniform",
    "Zipf",
    "MetricStream",
    "READ_MOSTLY",
    "READ_ONLY",
    "WRITE_HEAVY",
    "Op",
    "OperationMix",
    "OpKind",
    "generate",
    "YcsbWorkload",
    "ycsb_names",
    "ycsb_operations",
    "ycsb_workload",
]
