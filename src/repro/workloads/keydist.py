"""Key distributions for map benchmarks.

All generators are seeded and deterministic; they emit numpy arrays of
u64 keys, suitable for HT-tree / hash-table / B-tree workloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class KeyDistribution(ABC):
    """A reproducible stream of keys in ``[0, keyspace)``."""

    def __init__(self, keyspace: int, seed: int = 0) -> None:
        if keyspace <= 0:
            raise ValueError("keyspace must be positive")
        self.keyspace = keyspace
        self.rng = np.random.default_rng(seed)

    @abstractmethod
    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` keys."""

    def sample_unique(self, count: int) -> np.ndarray:
        """Draw ``count`` distinct keys (for bulk loading)."""
        if count > self.keyspace:
            raise ValueError("cannot draw more unique keys than the keyspace")
        seen: set[int] = set()
        out = np.empty(count, dtype=np.uint64)
        filled = 0
        while filled < count:
            batch = self.sample(count - filled)
            for key in batch:
                k = int(key)
                if k not in seen:
                    seen.add(k)
                    out[filled] = k
                    filled += 1
                    if filled == count:
                        break
        return out


class Uniform(KeyDistribution):
    """Uniformly random keys."""

    def sample(self, count: int) -> np.ndarray:
        return self.rng.integers(0, self.keyspace, size=count, dtype=np.uint64)


class Sequential(KeyDistribution):
    """Monotonically increasing keys, wrapping at the keyspace."""

    def __init__(self, keyspace: int, seed: int = 0, start: int = 0) -> None:
        super().__init__(keyspace, seed)
        self._next = start % keyspace

    def sample(self, count: int) -> np.ndarray:
        out = (np.arange(count, dtype=np.uint64) + self._next) % self.keyspace
        self._next = int((self._next + count) % self.keyspace)
        return out


class Zipf(KeyDistribution):
    """Zipfian keys (rank r drawn with probability proportional to r^-s),
    bounded to the keyspace and shuffled so hot keys are not clustered
    numerically."""

    def __init__(self, keyspace: int, seed: int = 0, s: float = 1.1) -> None:
        super().__init__(keyspace, seed)
        if s <= 1.0:
            raise ValueError("zipf exponent must exceed 1")
        self.s = s
        # A fixed random permutation maps ranks to key values.
        self._perm_seed = seed ^ 0x5EED

    def _rank_to_key(self, ranks: np.ndarray) -> np.ndarray:
        # splitmix-style mixing gives a cheap stable permutation.
        z = (ranks.astype(np.uint64) + np.uint64(self._perm_seed)) * np.uint64(
            0x9E3779B97F4A7C15
        )
        z ^= z >> np.uint64(31)
        return z % np.uint64(self.keyspace)

    def sample(self, count: int) -> np.ndarray:
        ranks = self.rng.zipf(self.s, size=count)
        ranks = np.minimum(ranks, self.keyspace) - 1
        return self._rank_to_key(ranks.astype(np.uint64))


class Hotspot(KeyDistribution):
    """A fraction of traffic concentrated on a small hot set."""

    def __init__(
        self,
        keyspace: int,
        seed: int = 0,
        hot_fraction: float = 0.01,
        hot_probability: float = 0.9,
    ) -> None:
        super().__init__(keyspace, seed)
        if not 0 < hot_fraction <= 1 or not 0 <= hot_probability <= 1:
            raise ValueError("invalid hotspot parameters")
        self.hot_keys = max(1, int(keyspace * hot_fraction))
        self.hot_probability = hot_probability

    def sample(self, count: int) -> np.ndarray:
        hot = self.rng.random(count) < self.hot_probability
        keys = self.rng.integers(self.hot_keys, self.keyspace, size=count, dtype=np.uint64)
        hot_draw = self.rng.integers(0, self.hot_keys, size=count, dtype=np.uint64)
        keys[hot] = hot_draw[hot]
        return keys
