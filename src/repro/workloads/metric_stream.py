"""Synthetic metric sample streams for the section 6 monitoring case study.

The paper's monitoring workload is "a sampled metric (e.g., CPU
utilization)" where "the samples are often in the normal range" and only
occasionally cross alarm thresholds. :class:`MetricStream` generates
exactly that shape: a Gaussian base signal with a controllable probability
of excursions into the alarm tail, so benchmarks can sweep how rare the
alarming samples are (the paper's ``m << N``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MetricStream:
    """A seeded generator of integer samples in ``[0, bins)``.

    Attributes:
        bins: histogram resolution (samples are bin indices).
        mean: centre of the normal operating range, in bins.
        std: spread of the normal range.
        spike_probability: chance a sample is drawn from the alarm tail.
        spike_low: lower edge of the tail range (defaults to 90% of bins).
        seed: RNG seed.
    """

    bins: int = 100
    mean: float = 40.0
    std: float = 8.0
    spike_probability: float = 0.01
    spike_low: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bins <= 1:
            raise ValueError("bins must exceed 1")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be in [0, 1]")

    @property
    def tail_start(self) -> int:
        """First bin of the alarm tail."""
        if self.spike_low is not None:
            return self.spike_low
        return int(self.bins * 0.9)

    def samples(self, count: int) -> np.ndarray:
        """Draw ``count`` samples (bin indices)."""
        rng = np.random.default_rng(self.seed)
        base = rng.normal(self.mean, self.std, size=count)
        base = np.clip(np.rint(base), 0, self.bins - 1).astype(np.int64)
        spikes = rng.random(count) < self.spike_probability
        tail = rng.integers(self.tail_start, self.bins, size=count)
        base[spikes] = tail[spikes]
        return base

    def expected_tail_fraction(self) -> float:
        """Approximate fraction of samples landing in the alarm tail."""
        # The Gaussian body contributes essentially nothing beyond the
        # tail start when it is several stds above the mean.
        sigma_distance = (self.tail_start - self.mean) / max(self.std, 1e-9)
        body_tail = 0.5 * float(np.exp(-0.5 * sigma_distance**2)) if sigma_distance < 6 else 0.0
        return self.spike_probability + body_tail
