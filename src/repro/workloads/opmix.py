"""Operation mixes: reproducible read/update/insert/delete streams."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .keydist import KeyDistribution


class OpKind(enum.Enum):
    """One map operation."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    SCAN = "scan"


@dataclass(frozen=True)
class Op:
    """A single operation against a key-value structure.

    For ``SCAN`` operations, ``key`` is the range start and ``value`` the
    span (number of consecutive keys requested).
    """

    kind: OpKind
    key: int
    value: int = 0


@dataclass(frozen=True)
class OperationMix:
    """Fractions of each operation kind (must sum to 1)."""

    read: float = 0.90
    update: float = 0.05
    insert: float = 0.05
    delete: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.delete
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1, got {total}")


READ_ONLY = OperationMix(read=1.0, update=0.0, insert=0.0)
READ_MOSTLY = OperationMix()
WRITE_HEAVY = OperationMix(read=0.5, update=0.25, insert=0.25)


def generate(
    mix: OperationMix,
    keys: KeyDistribution,
    count: int,
    *,
    seed: int = 0,
    fresh_keys: KeyDistribution | None = None,
) -> Iterator[Op]:
    """Yield ``count`` operations drawn from ``mix``.

    ``keys`` drives read/update/delete targets; ``fresh_keys`` (defaults
    to ``keys``) drives insert targets, letting benchmarks separate the
    loaded key population from the growth population.
    """
    rng = np.random.default_rng(seed)
    draws = rng.random(count)
    key_batch = keys.sample(count)
    fresh_batch = (fresh_keys or keys).sample(count)
    values = rng.integers(0, 1 << 32, size=count, dtype=np.uint64)
    thresholds = (
        mix.read,
        mix.read + mix.update,
        mix.read + mix.update + mix.insert,
    )
    for i in range(count):
        d = draws[i]
        if d < thresholds[0]:
            yield Op(OpKind.READ, int(key_batch[i]))
        elif d < thresholds[1]:
            yield Op(OpKind.UPDATE, int(key_batch[i]), int(values[i]))
        elif d < thresholds[2]:
            yield Op(OpKind.INSERT, int(fresh_batch[i]), int(values[i]))
        else:
            yield Op(OpKind.DELETE, int(key_batch[i]))
