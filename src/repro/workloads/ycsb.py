"""YCSB-style workload presets.

The Yahoo! Cloud Serving Benchmark core workloads are the lingua franca
of key-value evaluation; expressing them as
:class:`~repro.workloads.opmix.OperationMix` + key distribution pairs
lets the map benchmarks sweep recognisable shapes:

========  ==========================  ==================
workload  mix                          distribution
========  ==========================  ==================
A         50% read / 50% update        zipfian
B         95% read / 5% update         zipfian
C         100% read                    zipfian
D         95% read / 5% insert         latest-skewed
E         95% scan / 5% insert         zipfian starts
F         50% read / 50% rmw (update)  zipfian
========  ==========================  ==================

Workload E emits :attr:`~repro.workloads.opmix.OpKind.SCAN` operations
(``key`` = range start, ``value`` = span, uniform in [1, max_scan]); only
range-capable structures serve it — of this library's maps, the HT-tree
(whose leaves partition the key space by range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .keydist import KeyDistribution, Sequential, Uniform, Zipf
from .opmix import Op, OperationMix, OpKind, generate


@dataclass(frozen=True)
class YcsbWorkload:
    """One named preset."""

    name: str
    mix: OperationMix
    zipfian: bool
    description: str


_PRESETS = {
    "A": YcsbWorkload(
        "A", OperationMix(read=0.5, update=0.5, insert=0.0), True, "update heavy"
    ),
    "B": YcsbWorkload(
        "B", OperationMix(read=0.95, update=0.05, insert=0.0), True, "read mostly"
    ),
    "C": YcsbWorkload(
        "C", OperationMix(read=1.0, update=0.0, insert=0.0), True, "read only"
    ),
    "D": YcsbWorkload(
        "D", OperationMix(read=0.95, update=0.0, insert=0.05), False, "read latest"
    ),
    "E": YcsbWorkload(
        "E", OperationMix(read=0.95, update=0.0, insert=0.05), True, "short scans"
    ),
    "F": YcsbWorkload(
        "F", OperationMix(read=0.5, update=0.5, insert=0.0), True, "read-modify-write"
    ),
}


def workload(name: str) -> YcsbWorkload:
    """Fetch a preset by letter; raises for unknown names."""
    try:
        return _PRESETS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown YCSB workload {name!r}") from None


def operations(
    name: str,
    keyspace: int,
    count: int,
    *,
    seed: int = 0,
    zipf_s: float = 1.1,
    max_scan: int = 100,
) -> Iterator[Op]:
    """Generate ``count`` operations for preset ``name``.

    Zipfian presets draw hot keys with exponent ``zipf_s``; workload D
    models "read latest" with a sequential insert stream and uniform reads
    over the existing keyspace; workload E turns its read slots into SCAN
    operations with spans uniform in ``[1, max_scan]``.
    """
    preset = workload(name)
    keys: KeyDistribution
    if preset.zipfian:
        keys = Zipf(keyspace, seed=seed, s=zipf_s)
    else:
        keys = Uniform(keyspace, seed=seed)
    fresh = Sequential(1 << 62, seed=seed, start=keyspace)
    stream = generate(preset.mix, keys, count, seed=seed, fresh_keys=fresh)
    if preset.name != "E":
        return stream
    spans = np.random.default_rng(seed ^ 0xE).integers(1, max_scan + 1, size=count)
    return (
        Op(OpKind.SCAN, op.key, int(spans[i]))
        if op.kind is OpKind.READ
        else op
        for i, op in enumerate(stream)
    )


def names() -> list[str]:
    """The supported preset letters."""
    return sorted(_PRESETS)
