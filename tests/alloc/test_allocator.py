"""Unit + property tests for the far-memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import FarAllocator, PlacementHint, near, on_node, spread
from repro.fabric import Fabric, InterleavedPlacement, RangePlacement
from repro.fabric.errors import AllocationError

NODE_SIZE = 1 << 20


@pytest.fixture
def fabric():
    return Fabric(RangePlacement(node_count=4, node_size=NODE_SIZE))


@pytest.fixture
def allocator(fabric):
    return FarAllocator(fabric)


class TestBasicAllocation:
    def test_alloc_returns_nonzero(self, allocator):
        assert allocator.alloc(64) > 0

    def test_allocations_do_not_overlap(self, allocator):
        blocks = [(allocator.alloc(100), 100) for _ in range(50)]
        spans = sorted(blocks)
        for (a, sa), (b, _) in zip(spans, spans[1:]):
            assert a + sa <= b

    def test_default_alignment_is_word(self, allocator):
        for _ in range(10):
            assert allocator.alloc(3) % 8 == 0

    def test_custom_alignment(self, allocator):
        addr = allocator.alloc(8, PlacementHint(alignment=4096))
        assert addr % 4096 == 0

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_exhaustion(self, fabric):
        allocator = FarAllocator(fabric)
        with pytest.raises(AllocationError):
            allocator.alloc(fabric.total_size + 1)

    def test_alloc_words(self, allocator):
        addr = allocator.alloc_words(4)
        assert allocator.size_of(addr) == 32


class TestFree:
    def test_free_then_realloc_reuses(self, allocator):
        a = allocator.alloc(64)
        allocator.free(a)
        b = allocator.alloc(64)
        assert b == a

    def test_double_free_rejected(self, allocator):
        a = allocator.alloc(64)
        allocator.free(a)
        with pytest.raises(AllocationError):
            allocator.free(a)

    def test_free_unknown_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free(12345)

    def test_coalescing_restores_large_blocks(self, allocator):
        total_free = allocator.free_bytes()
        blocks = [allocator.alloc(1000) for _ in range(20)]
        for b in blocks:
            allocator.free(b)
        assert allocator.free_bytes() == total_free
        assert allocator.fragmentation() == 0.0

    def test_size_of_live_block(self, allocator):
        a = allocator.alloc(100)
        assert allocator.size_of(a) == 100
        allocator.free(a)
        with pytest.raises(AllocationError):
            allocator.size_of(a)


class TestHints:
    def test_on_node(self, allocator, fabric):
        for node in range(4):
            addr = allocator.alloc(64, on_node(node))
            assert fabric.node_of(addr) == node

    def test_near(self, allocator, fabric):
        anchor = allocator.alloc(64, on_node(2))
        buddy = allocator.alloc(64, near(anchor))
        assert fabric.node_of(buddy) == 2

    def test_spread_round_robins(self, allocator, fabric):
        nodes = [fabric.node_of(allocator.alloc(64, spread())) for _ in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_anti_near(self, allocator, fabric):
        anchor = allocator.alloc(64, on_node(0))
        other = allocator.alloc(64, PlacementHint(anti_near=anchor))
        assert fabric.node_of(other) != 0

    def test_node_hint_never_falls_back(self, fabric):
        allocator = FarAllocator(fabric)
        allocator.alloc(NODE_SIZE - 4096, on_node(1))  # nearly fill node 1
        with pytest.raises(AllocationError):
            allocator.alloc(NODE_SIZE // 2, on_node(1))

    def test_conflicting_hints_rejected(self):
        with pytest.raises(ValueError):
            PlacementHint(node=1, near=100)

    def test_hints_degrade_on_interleaved_placement(self):
        fabric = Fabric(
            InterleavedPlacement(node_count=2, node_size=NODE_SIZE, granularity=4096)
        )
        allocator = FarAllocator(fabric)
        allocator.alloc(64, on_node(1))  # does not raise; recorded instead
        assert allocator.stats.hint_unsatisfiable == 1

    def test_hint_stats(self, allocator):
        allocator.alloc(64, on_node(3))
        assert allocator.stats.hint_satisfied == 1


class TestStats:
    def test_live_tracking(self, allocator):
        a = allocator.alloc(100)
        b = allocator.alloc(200)
        assert allocator.stats.live_blocks == 2
        assert allocator.stats.live_bytes == 300
        allocator.free(a)
        assert allocator.stats.live_blocks == 1
        assert allocator.stats.live_bytes == 200
        del b

    def test_per_node_bytes(self, allocator, fabric):
        a = allocator.alloc(128, on_node(1))
        assert allocator.stats.per_node_bytes[1] >= 128
        allocator.free(a)
        assert allocator.stats.per_node_bytes[1] == 0

    def test_reserves_null_region(self, allocator):
        # Address 0 must never be handed out (it is the null pointer).
        addr = allocator.alloc(8)
        assert addr >= 8


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5000),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_alloc_free_invariants(self, script):
        fabric = Fabric(RangePlacement(node_count=2, node_size=NODE_SIZE))
        allocator = FarAllocator(fabric)
        initial_free = allocator.free_bytes()
        live: list[int] = []
        for size, do_free in script:
            if do_free and live:
                allocator.free(live.pop())
            else:
                live.append(allocator.alloc(size))
        # Conservation: free + live == initial free.
        assert allocator.free_bytes() + allocator.stats.live_bytes == initial_free
        # No overlaps among the live blocks.
        spans = sorted((a, allocator.size_of(a)) for a in live)
        for (a, sa), (b, _) in zip(spans, spans[1:]):
            assert a + sa <= b
        # Freeing everything restores a fully coalesced pool.
        for a in live:
            allocator.free(a)
        assert allocator.free_bytes() == initial_free
        assert allocator.fragmentation() == 0.0
