"""Property tests for the allocator's free-list and accounting invariants.

Hypothesis drives arbitrary interleavings of alloc/free (with hints,
growth, and odd sizes) and checks the structural invariants after every
step: the free list stays sorted, non-overlapping, and fully coalesced
(no two adjacent ranges), live/free bytes always partition the pool, and
``AllocStats`` never drifts from ground truth.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import FarAllocator, on_node, spread
from repro.fabric import Fabric, make_placement
from repro.fabric.errors import AllocationError

NODE_SIZE = 1 << 20


def check_invariants(allocator: FarAllocator, live: dict[int, int]) -> None:
    free = allocator._free
    # Sorted, non-overlapping, coalesced.
    for (a_start, a_size), (b_start, b_size) in zip(free, free[1:]):
        assert a_start + a_size < b_start, (
            f"free ranges overlap or touch uncoalesced: "
            f"({a_start}, {a_size}) then ({b_start}, {b_size})"
        )
    for start, size in free:
        assert size > 0
        assert 0 <= start and start + size <= allocator.fabric.total_size
    # Free ranges never intersect a live block.
    spans = sorted((addr, live[addr]) for addr in live)
    for (l_start, l_size), (f_start, f_size) in (
        (a, b) for a in spans for b in free
    ):
        assert l_start + l_size <= f_start or f_start + f_size <= l_start, (
            f"live block ({l_start}, {l_size}) overlaps free ({f_start}, {f_size})"
        )
    # Live blocks never overlap each other.
    for (a_start, a_size), (b_start, b_size) in zip(spans, spans[1:]):
        assert a_start + a_size <= b_start
    # Stats are ground truth.
    assert allocator.stats.live_blocks == len(live)
    assert allocator.stats.live_bytes == sum(live.values())
    assert allocator.free_bytes() == sum(size for _, size in free)
    # reserve_low bytes at the bottom are neither free nor live.
    total_accounted = allocator.free_bytes() + sum(live.values())
    assert total_accounted <= allocator.fabric.total_size


class TestAllocatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.integers(min_value=1, max_value=4),  # node count
        st.integers(min_value=40, max_value=120),  # ops
        st.booleans(),  # use placement hints?
    )
    def test_arbitrary_alloc_free_interleavings(self, seed, nodes, ops, hinted):
        rng = random.Random(seed)
        fabric = Fabric(make_placement(nodes, NODE_SIZE))
        allocator = FarAllocator(fabric)
        live: dict[int, int] = {}

        for _ in range(ops):
            if live and rng.random() < 0.45:
                address = rng.choice(sorted(live))
                allocator.free(address)
                del live[address]
            else:
                size = rng.choice([8, 24, 64, 1000, 4096, 65536])
                size += rng.randrange(0, 3) * 8
                hint = None
                if hinted and rng.random() < 0.5:
                    hint = (
                        on_node(rng.randrange(nodes))
                        if rng.random() < 0.5
                        else spread()
                    )
                try:
                    address = allocator.alloc(size, hint)
                except AllocationError:
                    continue  # full / hint unsatisfiable: fine, no mutation
                assert address % 8 == 0
                live[address] = allocator.size_of(address)
            check_invariants(allocator, live)

        # Tear down completely: everything coalesces back to one range.
        for address in sorted(live):
            allocator.free(address)
        live.clear()
        check_invariants(allocator, live)
        assert len(allocator._free) == 1
        assert allocator.stats.live_bytes == 0
        assert allocator.stats.allocations == allocator.stats.frees

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_per_node_accounting_balances_through_free(self, seed):
        rng = random.Random(seed)
        fabric = Fabric(make_placement(3, NODE_SIZE))
        allocator = FarAllocator(fabric)
        addresses = []
        for _ in range(30):
            try:
                addresses.append(
                    allocator.alloc(rng.choice([64, 4096]), on_node(rng.randrange(3)))
                )
            except AllocationError:
                pass
        for address in addresses:
            allocator.free(address)
        assert all(v == 0 for v in allocator.stats.per_node_bytes.values())

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=3),  # grow events
    )
    def test_growth_extends_the_free_list_coherently(self, seed, grows):
        rng = random.Random(seed)
        fabric = Fabric(make_placement(1, NODE_SIZE))
        allocator = FarAllocator(fabric)
        live: dict[int, int] = {}
        for _ in range(10):
            live_addr = allocator.alloc(rng.choice([64, 4096]))
            live[live_addr] = allocator.size_of(live_addr)
        for _ in range(grows):
            before = fabric.total_size
            fabric.add_node(grow_virtual=True)
            allocator.grow(fabric.total_size - before)
            check_invariants(allocator, live)
        # New space is allocatable.
        big = allocator.alloc(NODE_SIZE // 2)
        live[big] = allocator.size_of(big)
        check_invariants(allocator, live)
