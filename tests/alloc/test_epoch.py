"""Tests for epoch-based far-memory reclamation."""

import pytest

from repro import Cluster
from repro.alloc import EpochReclaimer
from repro.fabric.errors import AllocationError

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def reclaimer(cluster):
    return EpochReclaimer(cluster.allocator)


class TestLifecycle:
    def test_retire_defers_free(self, cluster, reclaimer):
        reclaimer.register()
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        # Still live: the participant has not quiesced past the epoch.
        assert cluster.allocator.size_of(block) == 64
        assert reclaimer.stats.pending == 1

    def test_quiesce_reclaims(self, cluster, reclaimer):
        pid = reclaimer.register()
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        reclaimer.quiesce(pid)  # advances the epoch past the block's
        reclaimer.quiesce(pid)
        assert reclaimer.stats.reclaimed == 1
        with pytest.raises(AllocationError):
            cluster.allocator.size_of(block)

    def test_slow_participant_blocks_reclamation(self, cluster, reclaimer):
        fast = reclaimer.register()
        slow = reclaimer.register()
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        for _ in range(5):
            reclaimer.quiesce(fast)  # the epoch cannot advance alone
        assert reclaimer.stats.pending == 1
        reclaimer.quiesce(slow)
        reclaimer.quiesce(fast)
        reclaimer.quiesce(slow)
        assert reclaimer.stats.pending == 0

    def test_deregister_unblocks(self, cluster, reclaimer):
        fast = reclaimer.register()
        crashed = reclaimer.register()
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        reclaimer.deregister(crashed)  # crash cleanup
        reclaimer.quiesce(fast)
        reclaimer.quiesce(fast)
        assert reclaimer.stats.pending == 0

    def test_no_participants_reclaims_immediately(self, cluster, reclaimer):
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        assert reclaimer.stats.pending == 0

    def test_retire_requires_live_block(self, cluster, reclaimer):
        with pytest.raises(AllocationError):
            reclaimer.retire(0xDEAD0)

    def test_double_retire_rejected_via_free(self, cluster, reclaimer):
        reclaimer.register()  # hold reclamation open
        block = cluster.allocator.alloc(64)
        reclaimer.retire(block)
        reclaimer.retire(block)  # accepted (still live)...
        with pytest.raises(AllocationError):
            reclaimer.drain()  # ...but the second free fails loudly

    def test_drain(self, cluster, reclaimer):
        reclaimer.register()
        blocks = [cluster.allocator.alloc(32) for _ in range(5)]
        for block in blocks:
            reclaimer.retire(block)
        assert reclaimer.drain() == 5
        assert reclaimer.stats.pending == 0

    def test_quiesce_unknown_participant(self, reclaimer):
        with pytest.raises(AllocationError):
            reclaimer.quiesce(99)


class TestHTTreeIntegration:
    def test_deletes_reclaim_records(self, cluster):
        reclaimer = EpochReclaimer(cluster.allocator)
        tree = cluster.ht_tree(bucket_count=64, max_chain=8, reclaimer=reclaimer)
        client = cluster.client()
        pid = reclaimer.register()
        for k in range(100):
            tree.put(client, k, k)
        live_before = cluster.allocator.stats.live_bytes
        for k in range(100):
            tree.delete(client, k)
        reclaimer.quiesce(pid)
        reclaimer.quiesce(pid)
        assert reclaimer.stats.reclaimed >= 100
        assert cluster.allocator.stats.live_bytes < live_before

    def test_splits_reclaim_old_tables(self, cluster):
        reclaimer = EpochReclaimer(cluster.allocator)
        tree = cluster.ht_tree(bucket_count=8, max_chain=2, reclaimer=reclaimer)
        client = cluster.client()
        pid = reclaimer.register()
        for k in range(200):
            tree.put(client, k, k)
        assert tree.stats.splits >= 1
        pending = reclaimer.stats.pending
        assert pending > 0  # old tables / records / leaves regions retired
        reclaimer.quiesce(pid)
        reclaimer.quiesce(pid)
        assert reclaimer.stats.pending == 0
        # The tree still answers correctly after reclamation.
        for k in range(200):
            assert tree.get(client, k) == k

    def test_stale_reader_safe_until_quiesce(self, cluster):
        # The invariant reclamation exists for: a reader holding a stale
        # tree can still dereference old tables until it quiesces.
        reclaimer = EpochReclaimer(cluster.allocator)
        tree = cluster.ht_tree(bucket_count=8, max_chain=2, reclaimer=reclaimer)
        writer, reader = cluster.client(), cluster.client()
        writer_pid = reclaimer.register()
        reader_pid = reclaimer.register()
        tree.put(writer, 1, 11)
        assert tree.get(reader, 1) == 11  # reader caches the tree
        for k in range(2, 150):
            tree.put(writer, k, k)
        reclaimer.quiesce(writer_pid)
        # Reader has not quiesced: old tables/tombstones are still live,
        # so its stale lookup path works and self-heals.
        assert reclaimer.stats.pending > 0
        assert tree.get(reader, 1) == 11
        reclaimer.quiesce(reader_pid)
        reclaimer.quiesce(writer_pid)
        reclaimer.quiesce(reader_pid)
        assert reclaimer.stats.pending == 0
