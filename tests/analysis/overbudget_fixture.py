"""A deliberately over-budget far structure (fmcost must-fail fixture).

Every method here violates the cost discipline in a distinct way; the
certificate built over this file (see ``test_fmcost.py``) must reject
all three. Not imported by the library — it exists only to prove that
the static gate actually fails when budgets lie.
"""

from repro.analysis.budget import far_budget
from repro.fabric.client import Client


class OverBudgetRegister:
    """A two-word register whose declared prices are all wrong."""

    def __init__(self, addr: int) -> None:
        self.addr = addr

    @far_budget(1, ceiling=1)
    def double_read(self, client: Client) -> int:
        """Declares one far access, unconditionally issues two."""
        low = client.read_u64(self.addr)
        high = client.read_u64(self.addr + 8)
        return (high << 64) | low

    @far_budget(1, ceiling=2)
    def drain(self, client: Client) -> int:
        """Declares a finite ceiling over an unbounded far-access loop."""
        spins = 0
        while client.read_u64(self.addr) != 0:
            spins += 1
        return spins

    def unpriced_touch(self, client: Client) -> int:
        """Public far op with no ``@far_budget`` declaration at all."""
        return client.read_u64(self.addr)
