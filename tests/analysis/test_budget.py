"""@far_budget runtime sanitizer tests: the paper's per-op far-access
prices (C4: HT-tree lookup=1/store=2; C5: queue fast path=1) become
always-on assertions under an active BudgetSanitizer."""

import pytest

from repro import Cluster
from repro.analysis.budget import (
    BudgetSanitizer,
    BudgetViolation,
    declared_budgets,
    far_budget,
)
from repro.apps.kvstore.kvstore import FarKVStore
from repro.core.ht_tree import HTTree, hash_u64
from repro.core.queue import FarQueue
from repro.core.registry import FarRegistry

NODE_SIZE = 8 << 20


def _collision_free_keys(count: int, bucket_count: int) -> list[int]:
    """Keys hashing to distinct buckets: the C4 single-probe fast path.

    A chained bucket legitimately costs an extra far access, so the
    exact lookup=1 / store=2 assertions need collision-free keys.
    """
    keys: list[int] = []
    buckets: set[int] = set()
    key = 0
    while len(keys) < count:
        bucket = hash_u64(key) % bucket_count
        if bucket not in buckets:
            buckets.add(bucket)
            keys.append(key)
        key += 1
    return keys


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestC4HTTreeBudgets:
    def test_warm_lookup_is_one_far_access(self, cluster):
        client = cluster.client("c4")
        tree = cluster.ht_tree(bucket_count=1024)
        keys = _collision_free_keys(32, 1024)
        for key in keys:
            tree.put(client, key, key)
        for key in keys:
            tree.get(client, key)  # warm every leaf cache entry
        with BudgetSanitizer() as san:
            for key in keys:
                assert tree.get(client, key) == key
        record = san.records["HTTree.get"]
        assert record.calls == 32
        assert record.max_delta == 1, "C4: lookup must cost 1 far access"
        assert record.fast_fraction == 1.0

    def test_warm_overwrite_is_two_far_accesses(self, cluster):
        client = cluster.client("c4w")
        tree = cluster.ht_tree(bucket_count=1024)
        keys = _collision_free_keys(32, 1024)
        for key in keys:
            tree.put(client, key, key)
        for key in keys:
            tree.get(client, key)  # warm every leaf cache entry
        with BudgetSanitizer() as san:
            for key in keys:
                tree.put(client, key, key + 1)
        record = san.records["HTTree.put"]
        assert record.max_delta == 2, "C4: store must cost 2 far accesses"
        assert record.fast_fraction == 1.0
        assert record.budget.claim == "C4"


class TestC5QueueBudgets:
    def test_fast_path_is_one_far_access(self, cluster):
        client = cluster.client("c5")
        queue = cluster.far_queue(capacity=64, max_clients=4)
        queue.enqueue(client, 1)
        queue.dequeue(client)
        with BudgetSanitizer() as san:
            for i in range(16):
                queue.enqueue(client, i + 1)
            for _ in range(16):
                queue.dequeue(client)
        enq = san.records["FarQueue.enqueue"]
        deq = san.records["FarQueue.dequeue"]
        assert enq.fast_fraction == 1.0, "C5: enqueue fast path must be 1"
        assert deq.fast_fraction == 1.0, "C5: dequeue fast path must be 1"
        assert enq.budget.claim == deq.budget.claim == "C5"


class TestSanitizerMechanics:
    def test_ceiling_violation_raises_under_strict(self, cluster):
        class Chatty:
            @far_budget(0, ceiling=0)
            def op(self, client, addr):
                return client.read_u64(addr)

        client = cluster.client("strict")
        addr = cluster.allocator.alloc(8)
        with BudgetSanitizer() as san:
            with pytest.raises(BudgetViolation, match="exceeds declared"):
                Chatty().op(client, addr)
        assert san.violations

    def test_non_strict_records_instead_of_raising(self, cluster):
        class Chatty:
            @far_budget(0, ceiling=0)
            def op(self, client, addr):
                return client.read_u64(addr)

        client = cluster.client("lax")
        addr = cluster.allocator.alloc(8)
        with BudgetSanitizer(strict=False) as san:
            Chatty().op(client, addr)
            Chatty().op(client, addr)
        assert len(san.violations) == 2
        assert "2 budget violation(s)" in san.report()

    def test_outermost_op_owns_the_delta(self, cluster):
        # FarKVStore.get composes HTTree.get; recording both would
        # double-count the same far accesses.
        client = cluster.client("nest")
        registry = FarRegistry.create(cluster.allocator, capacity=16)
        store = FarKVStore.create(
            cluster, registry, client, "kv", bucket_count=256
        )
        store.put(client, "k", b"v")
        with BudgetSanitizer() as san:
            assert store.get(client, "k") == b"v"
        assert "FarKVStore.get" in san.records
        assert "HTTree.get" not in san.records

    def test_per_item_budget_scales_with_batch_size(self, cluster):
        client = cluster.client("bulk")
        tree = cluster.ht_tree(bucket_count=1024)
        for key in range(8):
            tree.put(client, key, key)
        tree.get(client, 0)
        with BudgetSanitizer() as san:
            tree.multiget(client, list(range(8)))
        record = san.records["HTTree.multiget"]
        assert record.fast_hits == 1, "budget scaled to 8 items must hold"

    def test_inactive_sanitizer_is_a_passthrough(self, cluster):
        client = cluster.client("off")
        tree = cluster.ht_tree(bucket_count=64)
        tree.put(client, 1, 2)
        assert tree.get(client, 1) == 2  # no sanitizer: no recording, no error

    def test_nested_sanitizers_are_rejected(self):
        with BudgetSanitizer():
            with pytest.raises(RuntimeError, match="already active"):
                BudgetSanitizer().__enter__()

    def test_declarations_are_introspectable(self):
        tree_budgets = declared_budgets(HTTree)
        assert tree_budgets["get"].fast == 1
        assert tree_budgets["put"].fast == 2
        assert tree_budgets["get"].claim == "C4"
        queue_budgets = declared_budgets(FarQueue)
        assert queue_budgets["enqueue"].fast == 1
        assert queue_budgets["enqueue"].claim == "C5"
