"""Soundness bridge between fmcost and the runtime BudgetSanitizer.

For randomized workloads on every registered structure, each operation's
runtime far-access delta (as metered by the sanitizer) must stay within
the statically inferred worst-case bound from the cost certificate:
static >= dynamic, always. Operations whose static worst is T
(unbounded) or retry-exempt carry no finite claim and are vacuously
sound; everything else is checked exactly.
"""

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.analysis.budget import BudgetSanitizer
from repro.analysis.fmcost import analyze_paths, build_certificate
from repro.apps.kvstore.kvstore import FarKVStore
from repro.core.registry import FarRegistry
from repro.fabric.client import Client
from repro.fabric.replication import ReplicatedRegion

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"
NODE_SIZE = 8 << 20

_CERT_BY_KEY = {
    f"{record['structure']}.{record['op']}": record
    for record in build_certificate(analyze_paths([str(SRC)]))["records"]
}

_WORKLOAD_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_sound(san: BudgetSanitizer, n_max: int = 1) -> None:
    """Every observed delta <= the static worst bound for that op."""
    checked = 0
    for key, observed in san.records.items():
        record = _CERT_BY_KEY.get(key)
        if record is None:
            continue  # helper of an unregistered structure
        inferred = record["inferred"]
        if inferred["worst_unbounded"] or inferred["retry_exempt"]:
            continue  # no finite static claim to violate
        bound = inferred["worst_const"] + inferred["worst_per_item"] * max(
            n_max, 1
        )
        assert observed.max_delta <= bound, (
            f"{key}: observed {observed.max_delta} far accesses exceeds "
            f"static worst {inferred['worst']}"
        )
        checked += 1
    assert checked, "workload never hit a statically-bounded operation"


@pytest.fixture
def cluster():
    Client.reset_ids()
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestCounterAndMutex:
    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.sampled_from(
                ["increment", "decrement", "read", "set", "add", "cas"]
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_counter_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-ctr")
        counter = cluster.far_counter()
        with BudgetSanitizer(strict=False) as san:
            counter.read(client)  # primer: one bounded op always runs
            for op in ops:
                if op == "increment":
                    counter.increment(client)
                elif op == "decrement":
                    counter.decrement(client)
                elif op == "read":
                    counter.read(client)
                elif op == "set":
                    counter.set(client, 7)
                elif op == "add":
                    counter.add(client, 3)
                else:
                    counter.compare_and_set(client, 0, 1)
        _assert_sound(san)

    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.sampled_from(["try_acquire", "release", "holder"]),
            min_size=1,
            max_size=40,
        )
    )
    def test_mutex_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-mtx")
        mutex = cluster.far_mutex()
        held = False
        with BudgetSanitizer(strict=False) as san:
            mutex.holder(client)  # primer: one bounded op always runs
            for op in ops:
                if op == "try_acquire":
                    held = mutex.try_acquire(client) or held
                elif op == "release" and held:
                    mutex.release(client)
                    held = False
                elif op == "holder":
                    mutex.holder(client)
        _assert_sound(san)


class TestQueue:
    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["enqueue", "try_dequeue", "size"]),
                st.integers(min_value=0, max_value=2**32),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_queue_ops_stay_within_static_bounds(self, ops):
        from repro.fabric.errors import QueueFull

        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-q")
        queue = cluster.far_queue(capacity=64, max_clients=4)
        with BudgetSanitizer(strict=False) as san:
            queue.size_estimate(client)  # primer: one bounded op always runs
            for op, value in ops:
                if op == "enqueue":
                    try:
                        queue.enqueue(client, value)
                    except QueueFull:
                        pass
                elif op == "try_dequeue":
                    queue.try_dequeue(client)
                else:
                    queue.size_estimate(client)
        _assert_sound(san)


class TestHTTreeAndKVStore:
    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete", "cache_bytes"]),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_httree_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-ht")
        tree = cluster.ht_tree(bucket_count=256)
        with BudgetSanitizer(strict=False) as san:
            tree.cache_bytes(client)  # primer: one bounded op always runs
            for op, key in ops:
                if op == "put":
                    tree.put(client, key, key * 3)
                elif op == "get":
                    tree.get(client, key)
                elif op == "delete":
                    tree.delete(client, key)
                else:
                    tree.cache_bytes(client)
        _assert_sound(san)

    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete", "contains"]),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_kvstore_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-kv")
        registry = cluster.registry()
        store = FarKVStore.create(cluster, registry, client, "sound")
        with BudgetSanitizer(strict=False) as san:
            store.total_operations(client)  # primer: one bounded op always runs
            for op, key_index in ops:
                key = f"k{key_index}"
                if op == "put":
                    store.put(client, key, b"v" * (key_index + 1))
                elif op == "get":
                    store.get(client, key)
                elif op == "delete":
                    store.delete(client, key)
                else:
                    store.contains(client, key)
        _assert_sound(san)


class TestVectorAndReplication:
    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(
                    ["set", "get", "snapshot", "refresh", "mode"]
                ),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_vector_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("sound-vec")
        vector = cluster.refreshable_vector(length=16)
        with BudgetSanitizer(strict=False) as san:
            vector.reader_mode(client)  # primer: one bounded op always runs
            for op, index in ops:
                if op == "set":
                    vector.set(client, index, index + 1)
                elif op == "get":
                    vector.get(client, index)
                elif op == "snapshot":
                    vector.snapshot(client)
                elif op == "refresh":
                    vector.refresh(client)
                else:
                    vector.reader_mode(client)
        _assert_sound(san)

    @_WORKLOAD_SETTINGS
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "read", "write_word", "read_word"]),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_replicated_region_ops_stay_within_static_bounds(self, ops):
        Client.reset_ids()
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        client = cluster.client("sound-rep")
        region = ReplicatedRegion.create(cluster.allocator, 128, copies=2)
        with BudgetSanitizer(strict=False) as san:
            region.write_word(client, 0, 0)  # primer: one bounded op always runs
            for op, slot in ops:
                offset = slot * 8
                if op == "write":
                    region.write(client, offset, b"x" * 8)
                elif op == "read":
                    region.read(client, offset, 8)
                elif op == "write_word":
                    region.write_word(client, offset, slot)
                else:
                    region.read_word(client, offset)
        _assert_sound(san)
