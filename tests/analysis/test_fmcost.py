"""fmcost tests: the cost lattice, the min/worst walks, interprocedural
summaries, the repo-wide certificate (paper claims C2/C4/C5 certified
statically), baseline diffing, and the two must-fail cases — the planted
over-budget fixture and an artificially degraded hot path."""

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.fmcost import (
    TOP,
    ZERO,
    Cost,
    analyze_paths,
    build_certificate,
    certificate_failures,
    diff_certificates,
)

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"
FIXTURE = Path(__file__).resolve().parent / "overbudget_fixture.py"


@pytest.fixture(scope="module")
def repo_cert():
    return build_certificate(analyze_paths([str(SRC)]))


def _record(cert, structure, op):
    for record in cert["records"]:
        if record["structure"] == structure and record["op"] == op:
            return record
    raise AssertionError(f"no record for {structure}.{op}")


def _analyze(tmp_path, source, structures):
    mod = tmp_path / "toy.py"
    mod.write_text(textwrap.dedent(source))
    model = analyze_paths([str(mod)], structures=structures)
    return {record["op"]: record for record in model.records()}


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------


class TestCostLattice:
    def test_add_is_componentwise(self):
        a = Cost(const=1, per_item=2)
        b = Cost(const=3, per_item=1)
        assert a.add(b) == Cost(const=4, per_item=3)

    def test_join_takes_the_upper_bound(self):
        a = Cost(const=1, per_item=2)
        b = Cost(const=3)
        assert a.join(b) == Cost(const=3, per_item=2)

    def test_top_absorbs(self):
        assert TOP.add(Cost(const=5)).unbounded
        assert Cost(const=5).join(TOP).unbounded
        assert TOP.times_n().unbounded

    def test_times_n_moves_constants_to_per_item(self):
        assert Cost(const=2).times_n() == Cost(per_item=2)
        # n iterations of per-item work is n^2 — outside the lattice.
        assert Cost(const=2, per_item=1).times_n().unbounded

    def test_times_const_scales(self):
        assert Cost(const=2).times_const(3) == Cost(const=6)

    def test_times_unbounded_is_top_only_with_cost(self):
        assert ZERO.times_unbounded() == ZERO
        assert Cost(const=1).times_unbounded().unbounded

    def test_retry_flag_survives_add_and_join(self):
        window = Cost(const=1, retry=True)
        assert window.add(Cost(const=1)).retry
        assert Cost(const=0).join(window).retry

    def test_render(self):
        assert ZERO.render() == "0"
        assert Cost(const=2).render() == "2"
        assert Cost(per_item=1).render() == "1*n"
        assert Cost(const=1, per_item=2).render() == "1 + 2*n"
        assert TOP.render() == "T"
        assert "retry" in Cost(const=1, retry=True).render()


# ---------------------------------------------------------------------------
# Path-shape inference on toy structures
# ---------------------------------------------------------------------------


TOY = "Toy"


class TestInference:
    def test_straight_line_counts_client_ops(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(2, ceiling=2)
                def pair(self, client: Client) -> int:
                    a = client.read_u64(self.addr)
                    b = client.read_u64(self.addr + 8)
                    return a + b
            """,
            [TOY],
        )
        assert records["pair"]["verdict"] == "ok"
        assert records["pair"]["inferred"]["fast"] == "2"
        assert records["pair"]["inferred"]["worst"] == "2"

    def test_branches_min_versus_join(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, ceiling=3)
                def lookup(self, client: Client, key: int) -> int:
                    if key in self.cache:
                        return client.read_u64(self.base + key)
                    else:
                        client.read_u64(self.base)
                        client.read_u64(self.base + 8)
                        return client.read_u64(self.base + key)
            """,
            [TOY],
        )
        assert records["lookup"]["verdict"] == "ok"
        assert records["lookup"]["inferred"]["fast"] == "1"
        assert records["lookup"]["inferred"]["worst"] == "3"

    def test_bulk_loop_gives_per_item(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, per_item=True)
                def write_all(self, client: Client, values: list) -> None:
                    for index, value in enumerate(values):
                        client.write_u64(self.base + index, value)
            """,
            [TOY],
        )
        assert records["write_all"]["verdict"] == "ok"
        assert records["write_all"]["inferred"]["fast"] == "1*n"
        assert records["write_all"]["inferred"]["worst"] == "1*n"

    def test_accumulator_loops_are_not_double_charged(self, tmp_path):
        # A second pass over a *derived* accumulator must not inflate
        # the mandatory fast-path cost beyond one pass over n.
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, per_item=True)
                def stage(self, client: Client, values: list) -> None:
                    futures = []
                    for value in values:
                        futures.append(client.submit("write_u64", value))
                    for future in futures:
                        future.result()
            """,
            [TOY],
        )
        assert records["stage"]["inferred"]["fast"] == "1*n"
        assert records["stage"]["verdict"] == "ok"

    def test_unbounded_far_loop_is_top(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1)
                def spin(self, client: Client) -> None:
                    while client.read_u64(self.flag) == 0:
                        pass
            """,
            [TOY],
        )
        assert records["spin"]["inferred"]["worst"] == "T"
        # No ceiling declared, so T is allowed; the fast path is still 1
        # (while-condition evaluated once on immediate success).
        assert records["spin"]["verdict"] == "ok"

    def test_retry_directive_prices_one_attempt(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, ceiling=1)
                def bump(self, client: Client) -> None:
                    while True:  # fmcost: retry
                        seen = client.cas(self.addr, 0, 1)
                        if seen == 0:
                            return
            """,
            [TOY],
        )
        assert records["bump"]["verdict"] == "ok"
        assert records["bump"]["inferred"]["retry_exempt"] is True
        assert "retry" in records["bump"]["inferred"]["worst"]

    def test_cost_directive_overrides_the_body(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(3, ceiling=3)
                def opaque(self, client: Client) -> None:  # fmcost: cost=3
                    getattr(client, self.op_name)(self.addr)
            """,
            [TOY],
        )
        assert records["opaque"]["verdict"] == "ok"
        assert records["opaque"]["inferred"]["fast"] == "3"

    def test_helper_summaries_propagate(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                def _head(self, client: Client) -> int:
                    return client.read_u64(self.head_addr)

                @far_budget(2, ceiling=2)
                def peek(self, client: Client) -> int:
                    head = self._head(client)
                    return client.read_u64(head)
            """,
            [TOY],
        )
        assert records["peek"]["verdict"] == "ok"
        assert records["peek"]["inferred"]["fast"] == "2"

    def test_recursion_widens_to_top(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1)
                def chase(self, client: Client, addr: int) -> int:
                    nxt = client.read_u64(addr)
                    if nxt == 0:
                        return addr
                    return self.chase(client, nxt)
            """,
            [TOY],
        )
        assert records["chase"]["inferred"]["worst"] == "T"

    def test_raising_paths_are_excluded_from_fast(self, tmp_path):
        # The sanitizer never records a raising call, so validation-error
        # branches do not pin the fast path.
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, ceiling=1)
                def checked(self, client: Client, value: int) -> None:
                    if value < 0:
                        raise ValueError(value)
                    client.write_u64(self.addr, value)
            """,
            [TOY],
        )
        assert records["checked"]["verdict"] == "ok"
        assert records["checked"]["inferred"]["fast"] == "1"

    def test_missing_budget_is_flagged(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                def touch(self, client: Client) -> int:
                    return client.read_u64(self.addr)
            """,
            [TOY],
        )
        assert records["touch"]["verdict"] == "missing_budget"

    def test_private_and_near_methods_get_no_record(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                def _probe(self, client: Client) -> int:
                    return client.read_u64(self.addr)

                def label(self) -> str:
                    return self.name
            """,
            [TOY],
        )
        assert records == {}

    def test_regression_and_slack_verdicts(self, tmp_path):
        records = _analyze(
            tmp_path,
            """
            class Toy:
                @far_budget(1, ceiling=2)
                def cheap_lie(self, client: Client) -> int:
                    client.read_u64(self.a)
                    return client.read_u64(self.b)

                @far_budget(2, ceiling=2)
                def generous(self, client: Client) -> int:
                    return client.read_u64(self.a)
            """,
            [TOY],
        )
        assert records["cheap_lie"]["verdict"] == "regression"
        assert records["generous"]["verdict"] == "slack"


# ---------------------------------------------------------------------------
# The repo-wide certificate: paper claims hold statically
# ---------------------------------------------------------------------------


class TestRepoCertificate:
    def test_no_failing_operations(self, repo_cert):
        assert certificate_failures(repo_cert) == []

    def test_c4_httree_prices(self, repo_cert):
        get = _record(repo_cert, "HTTree", "get")
        put = _record(repo_cert, "HTTree", "put")
        assert get["declared"]["fast"] == 1
        assert get["inferred"]["fast"] == "1"
        assert get["verdict"] == "ok"
        assert put["declared"]["fast"] == 2
        assert put["inferred"]["fast"] == "2"
        assert put["verdict"] == "ok"

    def test_c5_queue_fast_path(self, repo_cert):
        for op in ("enqueue", "dequeue", "try_dequeue"):
            record = _record(repo_cert, "FarQueue", op)
            assert record["declared"]["fast"] == 1
            assert record["verdict"] in ("ok", "slack")
        assert _record(repo_cert, "FarQueue", "enqueue")["inferred"]["fast"] == "1"

    def test_c2_single_access_primitives(self, repo_cert):
        for op in ("increment", "decrement", "read", "set"):
            record = _record(repo_cert, "FarCounter", op)
            assert record["inferred"] == {
                "fast": "1",
                "fast_const": 1,
                "fast_per_item": 0,
                "retry_exempt": False,
                "worst": "1",
                "worst_const": 1,
                "worst_per_item": 0,
                "worst_unbounded": False,
            }
        assert _record(repo_cert, "FarMutex", "release")["verdict"] == "ok"

    def test_bulk_ops_are_per_item(self, repo_cert):
        multiget = _record(repo_cert, "HTTree", "multiget")
        assert multiget["declared"]["per_item"] is True
        assert multiget["inferred"]["fast"] == "1*n"

    def test_replicated_region_ceilings(self, repo_cert):
        write = _record(repo_cert, "ReplicatedRegion", "write")
        assert write["declared"]["ceiling"] == 2
        assert write["inferred"]["worst"] == "2"
        assert write["verdict"] == "ok"

    def test_every_registered_structure_is_covered(self, repo_cert):
        present = {record["structure"] for record in repo_cert["records"]}
        assert present == {
            "HTTree",
            "FarQueue",
            "RefreshableVector",
            "FarKVStore",
            "FarMutex",
            "FarCounter",
            "ReplicatedRegion",
            "TxnSpace",
        }

    def test_matches_committed_baseline(self, repo_cert):
        from repro.analysis.fmcost import load_certificate

        baseline = load_certificate(str(REPO / "analysis" / "cost_baseline.json"))
        assert diff_certificates(baseline, repo_cert) == []


# ---------------------------------------------------------------------------
# Certificate diffing
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_certificates_do_not_diff(self, repo_cert):
        assert diff_certificates(repo_cert, repo_cert) == []

    def test_changed_inference_diffs(self, repo_cert):
        import copy

        mutated = copy.deepcopy(repo_cert)
        record = _record(mutated, "HTTree", "get")
        record["inferred"]["fast"] = "3"
        diff = diff_certificates(repo_cert, mutated)
        assert len(diff) == 1 and "HTTree.get" in diff[0]

    def test_removed_operation_diffs(self, repo_cert):
        import copy

        mutated = copy.deepcopy(repo_cert)
        mutated["records"] = [
            r for r in mutated["records"] if r["op"] != "get" or r["structure"] != "HTTree"
        ]
        diff = diff_certificates(repo_cert, mutated)
        assert any("HTTree.get" in line for line in diff)

    def test_line_moves_do_not_diff(self, repo_cert):
        import copy

        mutated = copy.deepcopy(repo_cert)
        _record(mutated, "HTTree", "get")["line"] += 40
        assert diff_certificates(repo_cert, mutated) == []


# ---------------------------------------------------------------------------
# Must-fail cases
# ---------------------------------------------------------------------------


class TestMustFail:
    def test_overbudget_fixture_is_rejected(self):
        model = analyze_paths([str(FIXTURE)], structures=["OverBudgetRegister"])
        records = {record["op"]: record for record in model.records()}
        assert records["double_read"]["verdict"] == "regression"
        assert records["drain"]["verdict"] == "over_ceiling"
        assert records["unpriced_touch"]["verdict"] == "missing_budget"
        failures = certificate_failures(build_certificate(model))
        assert len(failures) == 3

    def test_degraded_hot_path_is_rejected(self, tmp_path):
        # Plant one extra far read on HTTree.get's hot path in a copy of
        # the tree; the certified fast=1 claim must break.
        degraded = tmp_path / "repro"
        shutil.copytree(SRC, degraded)
        target = degraded / "core" / "ht_tree.py"
        source = target.read_text()
        anchor = 'chain length <= 1). Returns the value or None."""'
        assert anchor in source
        target.write_text(
            source.replace(
                anchor, anchor + "\n        client.read_u64(self.root_addr)"
            )
        )
        cert = build_certificate(
            analyze_paths([str(degraded)], structures=["HTTree"])
        )
        record = _record(cert, "HTTree", "get")
        assert record["verdict"] == "regression"
        assert record["inferred"]["fast"] == "2"
        assert any("HTTree.get" in f for f in certificate_failures(cert))
