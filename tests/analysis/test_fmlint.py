"""fmlint rule tests: one bad and one good fixture per code, plus
suppression handling and the repo-wide cleanliness gate."""

import textwrap
from pathlib import Path

from repro.analysis.fmlint import RULES, lint_paths, lint_source, render_rules

REPO = Path(__file__).resolve().parent.parent.parent


def _lint(source: str):
    return lint_source(textwrap.dedent(source))


def _codes(source: str):
    return [finding.code for finding in _lint(source)]


# ---------------------------------------------------------------------------
# FM001 — sync-far-op-in-loop
# ---------------------------------------------------------------------------


class TestFM001:
    def test_flags_discarded_sync_op_in_for_loop(self):
        findings = _lint(
            """
            def zero(client, addrs):
                for addr in addrs:
                    client.write_u64(addr, 0)
            """
        )
        assert [f.code for f in findings] == ["FM001"]
        assert "write_u64" in findings[0].message

    def test_batch_context_is_clean(self):
        assert (
            _codes(
                """
                def zero(client, addrs):
                    with client.batch():
                        for addr in addrs:
                            client.write_u64(addr, 0)
                """
            )
            == []
        )

    def test_loop_exit_after_op_is_clean(self):
        # Find-then-act-once: the op runs at most once per call.
        assert (
            _codes(
                """
                def claim(client, slots):
                    for slot in slots:
                        client.write_u64(slot, 1)
                        return slot
                """
            )
            == []
        )

    def test_non_client_receiver_is_clean(self):
        assert (
            _codes(
                """
                def dump(fh, rows):
                    for row in rows:
                        fh.write(row)
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM002 — leaked-far-future
# ---------------------------------------------------------------------------


class TestFM002:
    def test_flags_discarded_unsignaled_submit(self):
        assert (
            _codes(
                """
                def fire(client, addr):
                    client.submit("write_u64", addr, 1, signaled=False)
                """
            )
            == ["FM002"]
        )

    def test_flags_assigned_but_never_used_future(self):
        findings = _lint(
            """
            def fire(client, addr):
                fut = client.submit("write_u64", addr, 1)
            """
        )
        assert [f.code for f in findings] == ["FM002"]
        assert "'fut'" in findings[0].message

    def test_result_ed_future_is_clean(self):
        assert (
            _codes(
                """
                def fire(client, addr):
                    fut = client.submit("write_u64", addr, 1)
                    return fut.result()
                """
            )
            == []
        )

    def test_discarded_signaled_submit_with_cq_drain_is_clean(self):
        assert (
            _codes(
                """
                def fire(client, addr):
                    client.submit("write_u64", addr, 1)
                    while client.cq.poll() is not None:
                        pass
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM003 — bypass-client-metering
# ---------------------------------------------------------------------------


class TestFM003:
    def test_flags_raw_fabric_data_op(self):
        findings = _lint(
            """
            def poke(fabric, addr):
                fabric.write_word(addr, 7)
            """
        )
        assert [f.code for f in findings] == ["FM003"]
        assert "metered Client" in findings[0].message

    def test_flags_fabric_attribute_receiver(self):
        assert (
            _codes(
                """
                def poke(self, addr):
                    self.fabric.read(addr, 8)
                """
            )
            == ["FM003"]
        )

    def test_client_op_is_clean(self):
        assert _codes("client.write_u64(0, 7)\n") == []


# ---------------------------------------------------------------------------
# FM004 — swallowed-far-timeout
# ---------------------------------------------------------------------------


class TestFM004:
    def test_flags_empty_timeout_handler(self):
        assert (
            _codes(
                """
                def probe(client, addr):
                    try:
                        return client.read_u64(addr)
                    except FarTimeoutError:
                        pass
                """
            )
            == ["FM004"]
        )

    def test_flags_timeout_in_exception_tuple(self):
        assert (
            _codes(
                """
                def probe(client, addr):
                    try:
                        return client.read_u64(addr)
                    except (OSError, FarTimeoutError):
                        pass
                """
            )
            == ["FM004"]
        )

    def test_handler_that_records_is_clean(self):
        assert (
            _codes(
                """
                def probe(client, addr, stats):
                    try:
                        return client.read_u64(addr)
                    except FarTimeoutError:
                        stats.timeouts += 1
                        return None
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM005 — nondeterministic-source
# ---------------------------------------------------------------------------


class TestFM005:
    def test_flags_time_import_and_global_rng_and_wall_clock(self):
        assert (
            _codes(
                """
                import time

                def jitter():
                    return random.random() + time.time()

                def stamp():
                    return datetime.now()
                """
            )
            == ["FM005", "FM005", "FM005"]
        )

    def test_seeded_rng_constructors_are_clean(self):
        assert (
            _codes(
                """
                def rngs(seed):
                    return random.Random(seed), np.random.default_rng(seed)
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM006 — unverified-replicated-read
# ---------------------------------------------------------------------------


class TestFM006:
    def test_flags_raw_read_of_replica_address(self):
        findings = _lint(
            """
            def peek(client, replica):
                return client.read(replica + 64, 48)
            """
        )
        assert [f.code for f in findings] == ["FM006"]
        assert "read_verified" in findings[0].message

    def test_flags_replica_attribute_and_word_read(self):
        assert (
            _codes(
                """
                def peek(client, region):
                    return client.read_u64(region.replicas[0])
                """
            )
            == ["FM006"]
        )

    def test_verified_read_is_clean(self):
        assert (
            _codes(
                """
                def peek(client, replica):
                    return client.read_verified(replica + 64, 48)
                """
            )
            == []
        )

    def test_non_replica_address_is_clean(self):
        assert (
            _codes(
                """
                def peek(client, base):
                    return client.read(base + 64, 48)
                """
            )
            == []
        )

    def test_non_client_receiver_is_clean(self):
        # A near-memory cache of replica frames is not a far read.
        assert (
            _codes(
                """
                def peek(cache, replica):
                    return cache.read(replica, 48)
                """
            )
            == []
        )

    def test_suppression_escape(self):
        assert (
            _codes(
                """
                def scrub(client, replica):
                    # fmlint: disable=FM006 (raw bytes wanted: CRC audit)
                    return client.read(replica, 48)
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM007 — physical-placement-leak
# ---------------------------------------------------------------------------


class TestFM007:
    def test_flags_node_of_and_locate(self):
        findings = _lint(
            """
            def where(cluster, address):
                node = cluster.fabric.node_of(address)
                spot = cluster.fabric.locate(address)
                return node, spot
            """
        )
        assert [f.code for f in findings] == ["FM007", "FM007"]
        assert "node_of" in findings[0].message
        assert "locate" in findings[1].message

    def test_flags_fabric_alias_receiver(self):
        assert (
            _codes(
                """
                def home(allocator, address):
                    fabric = allocator.fabric
                    return fabric.node_of(address)
                """
            )
            == ["FM007"]
        )

    def test_flags_hand_built_location(self):
        findings = _lint(
            """
            def stash(node, offset):
                return Location(node=node, offset=offset)
            """
        )
        assert [f.code for f in findings] == ["FM007"]
        assert "Location" in findings[0].message

    def test_virtual_address_use_is_clean(self):
        assert (
            _codes(
                """
                def read_all(client, address, length):
                    return client.read(address, length)
                """
            )
            == []
        )

    def test_non_fabric_receiver_is_clean(self):
        assert (
            _codes(
                """
                def lookup(table, address):
                    return table.node_of(address)
                """
            )
            == []
        )

    def test_suppression_escape(self):
        assert (
            _codes(
                """
                def pick_victim(cluster, address):
                    # fmlint: disable=FM007 — choosing a node to fail in a test
                    return cluster.fabric.node_of(address)
                """
            )
            == []
        )

    def test_translation_and_movement_layers_are_exempt(self):
        from repro.analysis.fmlint import _exempt_codes

        assert "FM007" in _exempt_codes("src/repro/fabric/extent.py")
        assert _exempt_codes("src/repro/recovery/repair.py") == {"FM007"}
        assert _exempt_codes("src/repro/migration/coordinator.py") == {"FM007"}
        assert "FM007" not in _exempt_codes("src/repro/alloc/allocator.py")


# ---------------------------------------------------------------------------
# FM008 — missing-far-budget
# ---------------------------------------------------------------------------


class TestFM008:
    def test_flags_public_far_op_without_budget(self):
        findings = _lint(
            """
            class FarCounter:
                def bump(self, client):
                    return client.faa(self.addr, 1)
            """
        )
        assert [f.code for f in findings] == ["FM008"]
        assert "bump" in findings[0].message

    def test_flags_one_level_helper_transitivity(self):
        assert (
            _codes(
                """
                class FarQueue:
                    def _push(self, client, value):
                        client.saai(self.tail, 8, value)

                    def push(self, client, value):
                        self._push(client, value)
                """
            )
            == ["FM008"]
        )

    def test_budgeted_method_is_clean(self):
        assert (
            _codes(
                """
                class FarCounter:
                    @far_budget(1, ceiling=1)
                    def bump(self, client):
                        return client.faa(self.addr, 1)
                """
            )
            == []
        )

    def test_private_and_unregistered_and_near_are_clean(self):
        assert (
            _codes(
                """
                class FarCounter:
                    def _bump(self, client):
                        return client.faa(self.addr, 1)

                    def label(self):
                        return self.name

                class Ledger:
                    def bump(self, client):
                        return client.faa(self.addr, 1)
                """
            )
            == []
        )

    def test_classmethod_constructor_is_clean(self):
        assert (
            _codes(
                """
                class ReplicatedRegion:
                    @classmethod
                    def create(cls, client, allocator):
                        client.write(allocator.alloc(64), b"0" * 64)
                        return cls()
                """
            )
            == []
        )

    def test_suppression_escape(self):
        assert (
            _codes(
                """
                class FarQueue:
                    # fmlint: disable=FM008 (observe only: debug probe)
                    def depth_probe(self, client):
                        return client.read_u64(self.head)
                """
            )
            == []
        )


# ---------------------------------------------------------------------------
# FM009 — unused-suppression
# ---------------------------------------------------------------------------


class TestFM009:
    def test_flags_suppression_that_no_longer_fires(self):
        findings = _lint(
            """
            def tally(rows):
                total = 0
                for row in rows:
                    total += row  # fmlint: disable=FM001
                return total
            """
        )
        assert [f.code for f in findings] == ["FM009"]
        assert "FM001" in findings[0].message

    def test_used_suppression_is_not_flagged(self):
        assert (
            _codes(
                """
                def zero(client, addrs):
                    for addr in addrs:
                        client.write_u64(addr, 0)  # fmlint: disable=FM001 (bandwidth-bound)
                """
            )
            == []
        )

    def test_partially_used_comment_flags_only_dead_code(self):
        findings = _lint(
            """
            def zero(client, addrs):
                for addr in addrs:
                    client.write_u64(addr, 0)  # fmlint: disable=FM001,FM004
            """
        )
        assert [f.code for f in findings] == ["FM009"]
        assert "FM004" in findings[0].message
        assert "FM001" not in findings[0].message

    def test_unused_file_wide_suppression_is_flagged(self):
        findings = lint_source("# fmlint: disable-file=FM002\nx = 1\n")
        assert [f.code for f in findings] == ["FM009"]

    def test_fm009_is_itself_suppressible(self):
        assert (
            _codes(
                """
                def tally(rows):
                    total = 0
                    for row in rows:
                        # fmlint: disable=FM001,FM009 (kept for a pending revert)
                        total += row
                    return total
                """
            )
            == []
        )

    def test_suppression_examples_in_docstrings_are_ignored(self):
        assert (
            _codes(
                '''
                def helper():
                    """Usage::

                        client.write(a, d)  # fmlint: disable=FM001
                    """
                    return None
                '''
            )
            == []
        )


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    BAD_LOOP = """
    def zero(client, addrs):
        for addr in addrs:
            client.write_u64(addr, 0){trailer}
    """

    def test_trailing_comment_suppresses_its_line(self):
        source = self.BAD_LOOP.format(
            trailer="  # fmlint: disable=FM001 (measured: bandwidth-bound)"
        )
        assert _codes(source) == []

    def test_standalone_comment_covers_next_line(self):
        assert (
            _codes(
                """
                def zero(client, addrs):
                    for addr in addrs:
                        # fmlint: disable=FM001 (crash-ordering requires it)
                        client.write_u64(addr, 0)
                """
            )
            == []
        )

    def test_wrong_code_does_not_suppress(self):
        # The mismatched code leaves FM001 live and is itself reported
        # as an unused suppression (FM009).
        source = self.BAD_LOOP.format(trailer="  # fmlint: disable=FM003")
        assert sorted(_codes(source)) == ["FM001", "FM009"]

    def test_file_wide_suppression(self):
        source = "# fmlint: disable-file=FM001\n" + textwrap.dedent(
            self.BAD_LOOP.format(trailer="")
        )
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# FM010 — raw-txn-version-atomic
# ---------------------------------------------------------------------------


class TestFM010:
    def test_flags_raw_cas_on_version_word(self):
        findings = _lint(
            """
            def sneak(client, space, slot):
                client.cas(space.version_addr(slot), 0, 99)
            """
        )
        assert [f.code for f in findings] == ["FM010"]
        assert "TxnSpace" in findings[0].message

    def test_flags_saai_and_faa_variants(self):
        assert _codes(
            """
            def bump(client, version_word):
                client.faa(version_word, 2)
                client.saai(version_word, 8, 1)
            """
        ) == ["FM010", "FM010"]

    def test_flags_submitted_atomic(self):
        assert _codes(
            """
            def sneak(client, space, slot):
                fut = client.submit("cas", space.version_addr(slot), 0, 99)
                fut.result()
            """
        ) == ["FM010"]

    def test_private_versioning_is_clean(self):
        # Structures with version words of their own (RefreshableVector's
        # _version_address) must not trip the rule: exact-name match only.
        assert (
            _codes(
                """
                def bump(self, client, slot):
                    client.faa(self._version_address(slot), 1)
                """
            )
            == []
        )

    def test_non_client_receiver_is_clean(self):
        assert (
            _codes(
                """
                def local(table, version_word):
                    table.cas(version_word, 0, 1)
                """
            )
            == []
        )

    def test_suppression_escape(self):
        assert (
            _codes(
                """
                def repair_tool(client, space, slot):
                    # fmlint: disable=FM010 (offline fsck, no live clients)
                    client.cas(space.version_addr(slot), 3, 2)
                """
            )
            == []
        )

    def test_txn_and_fabric_layers_are_exempt(self):
        from repro.analysis.fmlint import _exempt_codes

        assert _exempt_codes("src/repro/txn/txn.py") == {"FM010"}
        assert "FM010" in _exempt_codes("src/repro/fabric/client.py")
        assert "FM010" not in _exempt_codes("src/repro/core/vector.py")


# ---------------------------------------------------------------------------
# Repo gate + rule table
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_and_examples_lint_clean(self):
        findings = lint_paths([str(REPO / "src"), str(REPO / "examples")])
        rendered = "\n".join(f.format() for f in findings)
        assert findings == [], f"fmlint findings:\n{rendered}"

    def test_rule_table_lists_every_code(self):
        table = render_rules()
        for code, rule in RULES.items():
            assert code in table and rule.name in table
