"""Happens-before race detector tests: synthetic traces for each
synchronization edge (atomics, reads-from, notify) plus the seeded racy
example end to end through the CLI."""

import json

from repro.__main__ import main
from repro.analysis.races import WORD, detect_races, detect_races_in_file


def _access(client, op, addr, *, target=None, atomic=False, ts=0.0):
    record = {
        "type": "event",
        "kind": "far_access",
        "client": client,
        "op": op,
        "addr": addr,
        "atomic": atomic,
        "ts_ns": ts,
    }
    if target is not None:
        record["target"] = target
    return record


def _notify(client, watch_addr, outcome="delivered"):
    return {
        "type": "event",
        "kind": "notify",
        "client": client,
        "watch_addr": watch_addr,
        "outcome": outcome,
    }


COUNTER = 0x100
LOCK = 0x200
DATA = 0x208
HEAD = 0x300
SLOT = 0x308


class TestRacyTraces:
    def test_lost_update_is_two_errors(self):
        # Both clients read 0, both write 1: the textbook lost update.
        report = detect_races(
            [
                _access("alice", "read_u64", COUNTER),
                _access("bob", "read_u64", COUNTER),
                _access("alice", "write_u64", COUNTER),
                _access("bob", "write_u64", COUNTER),
            ]
        )
        kinds = sorted((r.first.kind, r.second.kind) for r in report.errors)
        assert kinds == [("read", "write"), ("write", "write")]
        assert all(r.word == COUNTER // WORD for r in report.errors)

    def test_blind_write_write_is_an_error(self):
        report = detect_races(
            [
                _access("alice", "write_u64", DATA),
                _access("bob", "write_u64", DATA),
            ]
        )
        assert len(report.errors) == 1
        assert "write-write" in report.errors[0].format()

    def test_atomic_vs_plain_is_a_warning_not_error(self):
        # A designed racy read of an atomically-updated word (the
        # refreshable-vector pattern) is surfaced but not fatal.
        report = detect_races(
            [
                _access("alice", "read_u64", COUNTER),
                _access("bob", "faa", COUNTER, atomic=True),
            ]
        )
        assert report.errors == []
        assert len(report.warnings) == 1


class TestSynchronizedTraces:
    def test_atomic_counter_is_race_free(self):
        report = detect_races(
            [
                _access("alice", "faa", COUNTER, atomic=True),
                _access("bob", "faa", COUNTER, atomic=True),
                _access("bob", "read_u64", COUNTER),
            ]
        )
        assert report.races == []

    def test_mutex_protected_writes_are_race_free(self):
        # Release/acquire through the lock word orders the data writes.
        report = detect_races(
            [
                _access("alice", "cas", LOCK, atomic=True),
                _access("alice", "write_u64", DATA),
                _access("alice", "cas", LOCK, atomic=True),
                _access("bob", "cas", LOCK, atomic=True),
                _access("bob", "write_u64", DATA),
            ]
        )
        assert report.races == []

    def test_reads_from_orders_publish_then_discover(self):
        # bob's read observed alice's write; bob's later write is ordered.
        report = detect_races(
            [
                _access("alice", "write_u64", DATA),
                _access("bob", "read_u64", DATA),
                _access("bob", "write_u64", DATA),
            ]
        )
        assert report.races == []

    def test_queue_handoff_through_slot_target_is_race_free(self):
        # C5: producer saai and consumer fsaai resolve to the same slot
        # word (the ``target``); the handoff orders the plain payload
        # accesses even though the atomics issue on the shared head word.
        report = detect_races(
            [
                _access("producer", "write_u64", SLOT),
                _access("producer", "saai", HEAD, target=SLOT, atomic=True),
                _access("consumer", "fsaai", HEAD, target=SLOT, atomic=True),
                _access("consumer", "read_u64", SLOT),
                _access("consumer", "write_u64", SLOT),
            ]
        )
        assert report.races == []

    def test_notify_acquires_the_watched_word(self):
        racy = [
            _access("writer", "write_u64", DATA),
            _access("watcher", "write_u64", DATA),
        ]
        assert len(detect_races(racy).errors) == 1
        synced = [
            _access("writer", "write_u64", DATA),
            _notify("watcher", DATA),
            _access("watcher", "write_u64", DATA),
        ]
        assert detect_races(synced).races == []


class TestReportAndCli:
    def test_report_counts_and_truncation(self):
        records = [
            _access(client, "write_u64", DATA + i * WORD)
            for i in range(4)
            for client in ("a", "b")
        ]
        report = detect_races(records)
        assert report.events_seen == 8
        assert len(report.errors) == 4
        text = report.format(max_rows=2)
        assert "... 2 more" in text
        assert "4 error(s)" in text

    def test_cli_flags_the_seeded_racy_example(self, tmp_path, capsys):
        assert main(["trace", "lost_update", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        trace = tmp_path / "lost_update.trace.jsonl"
        assert main(["races", str(trace)]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out

        # The library sees the same thing: the racy half and only it.
        report = detect_races_in_file(str(trace))
        assert len(report.errors) == 2
        assert {r.first.op for r in report.errors} <= {"read_u64", "write_u64"}

    def test_cli_passes_a_clean_trace(self, tmp_path, capsys):
        clean = tmp_path / "clean.trace.jsonl"
        records = [
            _access("alice", "faa", COUNTER, atomic=True),
            _access("bob", "faa", COUNTER, atomic=True),
            _access("bob", "read_u64", COUNTER),
        ]
        clean.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert main(["races", str(clean)]) == 0
        assert "0 error(s)" in capsys.readouterr().out
