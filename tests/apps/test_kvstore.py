"""Integration tests for the composed KV-store application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.apps.kvstore import FarKVStore
from repro.core.registry import RegistryError

NODE_SIZE = 32 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


@pytest.fixture
def registry(cluster):
    return cluster.registry()


def make_store(cluster, registry, name="store"):
    return FarKVStore.create(cluster, registry, cluster.client(), name)


class TestBasics:
    def test_roundtrip(self, cluster, registry):
        store = make_store(cluster, registry)
        c = cluster.client()
        store.put(c, "user:42", b'{"name": "ada"}')
        assert store.get(c, "user:42") == b'{"name": "ada"}'

    def test_missing(self, cluster, registry):
        store = make_store(cluster, registry)
        assert store.get(cluster.client(), "ghost") is None
        assert not store.contains(cluster.client(), "ghost")

    def test_overwrite(self, cluster, registry):
        store = make_store(cluster, registry)
        c = cluster.client()
        store.put(c, "k", b"v1")
        store.put(c, "k", b"v2")
        assert store.get(c, "k") == b"v2"

    def test_delete(self, cluster, registry):
        store = make_store(cluster, registry)
        c = cluster.client()
        store.put(c, "k", b"v")
        assert store.delete(c, "k")
        assert store.get(c, "k") is None
        assert not store.delete(c, "k")

    def test_unicode_keys_and_binary_values(self, cluster, registry):
        store = make_store(cluster, registry)
        c = cluster.client()
        store.put(c, "clé-éè", bytes(range(256)))
        assert store.get(c, "clé-éè") == bytes(range(256))

    def test_shared_ops_counter(self, cluster, registry):
        store = make_store(cluster, registry)
        a, b = cluster.client(), cluster.client()
        store.put(a, "x", b"1")
        store.put(b, "y", b"2")
        assert store.total_operations(a) == 2


class TestDiscovery:
    def test_open_by_name(self, cluster, registry):
        store = make_store(cluster, registry, "shared")
        writer = cluster.client()
        store.put(writer, "k", b"v")
        other = FarKVStore.open(cluster, registry, cluster.client(), "shared")
        assert other.get(cluster.client(), "k") == b"v"

    def test_open_missing_raises(self, cluster, registry):
        with pytest.raises(RegistryError):
            FarKVStore.open(cluster, registry, cluster.client(), "nope")

    def test_open_wrong_kind_raises(self, cluster, registry):
        client = cluster.client()
        registry.register_counter(client, "ctr", cluster.far_counter())
        with pytest.raises(RegistryError):
            FarKVStore.open(cluster, registry, client, "ctr")

    def test_writes_visible_across_handles(self, cluster, registry):
        original = make_store(cluster, registry, "dual")
        attached = FarKVStore.open(cluster, registry, cluster.client(), "dual")
        c1, c2 = cluster.client(), cluster.client()
        original.put(c1, "from-original", b"a")
        attached.put(c2, "from-attached", b"b")
        assert attached.get(c2, "from-original") == b"a"
        assert original.get(c1, "from-attached") == b"b"


class TestReclamation:
    def test_replaced_values_reclaimed(self, cluster, registry):
        reclaimer = cluster.reclaimer()
        store = FarKVStore.create(
            cluster, registry, cluster.client(), "rc", reclaimer=reclaimer
        )
        c = cluster.client()
        pid = reclaimer.register()
        for i in range(10):
            store.put(c, "hot", f"v{i}".encode())
        reclaimer.quiesce(pid)
        reclaimer.quiesce(pid)
        assert reclaimer.stats.reclaimed >= 9


class TestProfile:
    def test_get_cost_ledger(self, cluster, registry):
        store = make_store(cluster, registry)
        c = cluster.client()
        store.put(c, "k", b"v")
        store.get(c, "k")  # warm
        store.get(c, "k")
        row = store.profiler.row("get")
        # Warm small get = index lookup (1) + blob read (1).
        assert row.far_per_op() <= 2.5
        assert "get" in store.report()


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.text(min_size=1, max_size=12),
                st.binary(max_size=64),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_model_dict(self, script):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        registry = cluster.registry()
        store = FarKVStore.create(cluster, registry, cluster.client(), "prop")
        client = cluster.client()
        model: dict[str, bytes] = {}
        for op, key, value in script:
            if op == "put":
                store.put(client, key, value)
                model[key] = value
            elif op == "get":
                assert store.get(client, key) == model.get(key)
            else:
                assert store.delete(client, key) == (key in model)
                model.pop(key, None)
        for key, value in model.items():
            assert store.get(client, key) == value
