"""Integration tests for the section 6 monitoring case study."""

import pytest

from repro import Cluster
from repro.apps.monitoring import (
    AlarmConsumer,
    AlarmLevel,
    FarHistogram,
    MetricProducer,
    NaiveConsumer,
    NaiveMonitor,
    NaiveProducer,
    WindowedHistogramRing,
)
from repro.workloads import MetricStream

NODE_SIZE = 32 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestFarHistogram:
    def test_record_counts(self, cluster):
        hist = FarHistogram.create(cluster.allocator, bins=10)
        c = cluster.client()
        for _ in range(3):
            hist.record(c, 5)
        hist.record(c, 9)
        counts = hist.read_counts(c)
        assert counts[5] == 3 and counts[9] == 1

    def test_record_is_one_far_access(self, cluster):
        hist = FarHistogram.create(cluster.allocator, bins=10)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        hist.record(c, 3)
        assert c.metrics.delta(snapshot).far_accesses == 1


class TestWindowRing:
    def test_advance_zeroes_new_window(self, cluster):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=10, window_count=3)
        c = cluster.client()
        ring.histogram.record(c, 1)
        old_storage = ring.current_storage()
        ring.advance(c)
        assert ring.histogram.read_counts(c)[1] == 0  # fresh window
        assert ring.read_window(c, old_storage)[1] == 1  # history kept

    def test_ring_reuses_regions(self, cluster):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=4, window_count=2)
        c = cluster.client()
        first = ring.current_storage()
        ring.advance(c)
        ring.advance(c)
        assert ring.current_storage() == first

    def test_previous_storages(self, cluster):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=4, window_count=4)
        c = cluster.client()
        w0 = ring.current_storage()
        ring.advance(c)
        w1 = ring.current_storage()
        ring.advance(c)
        assert ring.previous_storages(2) == [w1, w0]
        with pytest.raises(ValueError):
            ring.previous_storages(4)

    def test_ring_needs_two_windows(self, cluster):
        with pytest.raises(ValueError):
            WindowedHistogramRing.create(cluster.allocator, bins=4, window_count=1)


class TestAlarms:
    def _setup(self, cluster, levels=None):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=3)
        producer = MetricProducer(ring=ring, client=cluster.client("prod"))
        consumer = AlarmConsumer(
            ring=ring,
            manager=cluster.notifications,
            client=cluster.client("cons"),
            levels=levels or AlarmConsumer.levels,
        )
        consumer.start()
        return ring, producer, consumer

    def test_normal_samples_never_notify(self, cluster):
        _, producer, consumer = self._setup(cluster)
        for _ in range(100):
            producer.record(40)  # normal range
        assert consumer.poll() == []
        assert consumer.client.metrics.notifications_received == 0

    def test_tail_sample_raises_alarm(self, cluster):
        _, producer, consumer = self._setup(cluster)
        producer.record(97)  # critical band [95, 99)
        alarms = consumer.poll()
        assert [a.level for a in alarms] == ["critical"]

    def test_min_events_duration(self, cluster):
        levels = (AlarmLevel("warning", 90, 100, min_events=3),)
        _, producer, consumer = self._setup(cluster, levels=levels)
        producer.record(95)
        producer.record(95)
        assert consumer.poll() == []
        producer.record(95)
        assert [a.level for a in consumer.poll()] == ["warning"]

    def test_alarm_state_resets_per_window(self, cluster):
        levels = (AlarmLevel("failure", 99, 100),)
        _, producer, consumer = self._setup(cluster, levels=levels)
        producer.record(99)
        assert len(consumer.poll()) == 1
        producer.close_window()
        producer.record(99)
        alarms = consumer.poll()
        assert len(alarms) == 1
        assert alarms[0].window == 1

    def test_copy_counts_option(self, cluster):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=2)
        producer = MetricProducer(ring=ring, client=cluster.client())
        consumer = AlarmConsumer(
            ring=ring,
            manager=cluster.notifications,
            client=cluster.client(),
            copy_counts=True,
        )
        consumer.start()
        producer.record(99)
        alarms = consumer.poll()
        assert alarms[0].counts is not None
        assert sum(alarms[0].counts) == 1

    def test_multiple_consumers_different_thresholds(self, cluster):
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=2)
        producer = MetricProducer(ring=ring, client=cluster.client())
        warn_only = AlarmConsumer(
            ring=ring,
            manager=cluster.notifications,
            client=cluster.client(),
            levels=(AlarmLevel("warning", 90, 95),),
        )
        fail_only = AlarmConsumer(
            ring=ring,
            manager=cluster.notifications,
            client=cluster.client(),
            levels=(AlarmLevel("failure", 99, 100),),
        )
        warn_only.start()
        fail_only.start()
        producer.record(92)
        assert [a.level for a in warn_only.poll()] == ["warning"]
        assert fail_only.poll() == []

    def test_correlate_windows(self, cluster):
        _, producer, consumer = self._setup(cluster)
        producer.record(95)
        producer.close_window()
        producer.record(95)
        producer.record(96)
        producer.close_window()
        consumer.poll()
        assert consumer.correlate_windows(2) == [2, 1]

    def test_stop_silences(self, cluster):
        _, producer, consumer = self._setup(cluster)
        consumer.stop()
        producer.record(99)
        assert consumer.poll() == []


class TestTrafficFormula:
    """The headline claim: (k+1)N naive vs N + m with histograms."""

    N = 1500
    K = 3

    def _stream(self):
        return MetricStream(bins=100, spike_probability=0.01, seed=11).samples(self.N)

    def test_naive_is_k_plus_1_N(self, cluster):
        samples = self._stream()
        monitor = NaiveMonitor.create(cluster.allocator, capacity=self.N)
        producer = NaiveProducer(monitor=monitor, client=cluster.client())
        consumers = [
            NaiveConsumer(monitor=monitor, client=cluster.client())
            for _ in range(self.K)
        ]
        producer.run(samples)
        for consumer in consumers:
            consumer.poll()
        total = producer.client.metrics.far_accesses + sum(
            c.client.metrics.far_accesses for c in consumers
        )
        # (k+1)N sample transfers plus one count-poll per consumer.
        assert total == (self.K + 1) * self.N + self.K

    def test_histogram_design_is_N_plus_m(self, cluster):
        samples = self._stream()
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=3)
        producer = MetricProducer(ring=ring, client=cluster.client())
        consumers = [
            AlarmConsumer(
                ring=ring, manager=cluster.notifications, client=cluster.client()
            )
            for _ in range(self.K)
        ]
        for consumer in consumers:
            consumer.start()
        producer.run(samples, samples_per_window=500)
        for consumer in consumers:
            consumer.poll()
        producer_far = producer.client.metrics.far_accesses
        m = sum(c.client.metrics.notifications_received for c in consumers)
        consumer_far = sum(c.client.metrics.far_accesses for c in consumers)
        assert producer_far <= self.N + 2 * 3 + 1  # N + window rotations
        assert m < self.N * 0.15  # m << N
        # Consumers barely touch far memory (subscriptions only).
        assert consumer_far < 0.1 * self.K * self.N
        naive_total = (self.K + 1) * self.N
        optimized_total = producer_far + consumer_far + m
        assert optimized_total < naive_total / 2
