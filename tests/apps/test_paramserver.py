"""Integration tests for the parameter-server application (section 5.4)."""

import numpy as np
import pytest

from repro import Cluster
from repro.apps.paramserver import (
    Coordinator,
    GradientChannel,
    Worker,
    float_to_word,
    floats_to_words,
    make_sparse_dataset,
    run_training,
    word_to_float,
    words_to_floats,
)

NODE_SIZE = 32 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestEncoding:
    def test_roundtrip_scalar(self):
        for value in (0.0, 1.5, -3.25, 1e300, -1e-300):
            assert word_to_float(float_to_word(value)) == value

    def test_roundtrip_array(self):
        arr = np.array([0.1, -2.5, 3e10])
        assert (words_to_floats(floats_to_words(arr)) == arr).all()

    def test_nan_preserved_bitwise(self):
        word = float_to_word(float("nan"))
        assert np.isnan(word_to_float(word))


class TestDataset:
    def test_shapes(self):
        data, truth = make_sparse_dataset(64, 100, nnz=8, seed=1)
        assert len(data) == 100
        assert truth.shape == (64,)
        assert all(len(ex.indices) == 8 for ex in data)

    def test_targets_follow_truth(self):
        data, truth = make_sparse_dataset(32, 50, noise=0.0, seed=2)
        for ex in data[:10]:
            assert ex.target == pytest.approx(float(ex.values @ truth[ex.indices]))

    def test_deterministic(self):
        a, _ = make_sparse_dataset(16, 10, seed=3)
        b, _ = make_sparse_dataset(16, 10, seed=3)
        assert all(
            (x.indices == y.indices).all() and x.target == y.target
            for x, y in zip(a, b)
        )


class TestGradientChannel:
    def test_send_receive_roundtrip(self, cluster):
        channel = GradientChannel.create(cluster, max_workers=2)
        worker, coordinator = cluster.client(), cluster.client()
        gradient = {3: 0.5, 17: -1.25}
        channel.send(worker, gradient)
        assert channel.receive(coordinator) == gradient

    def test_receive_idle_returns_none(self, cluster):
        channel = GradientChannel.create(cluster, max_workers=2)
        assert channel.receive(cluster.client()) is None

    def test_fifo_across_workers(self, cluster):
        channel = GradientChannel.create(cluster, max_workers=3)
        workers = [cluster.client() for _ in range(2)]
        coordinator = cluster.client()
        channel.send(workers[0], {1: 1.0})
        channel.send(workers[1], {2: 2.0})
        assert channel.receive(coordinator) == {1: 1.0}
        assert channel.receive(coordinator) == {2: 2.0}

    def test_blob_region_recycled(self, cluster):
        channel = GradientChannel.create(cluster, max_workers=2)
        worker, coordinator = cluster.client(), cluster.client()
        live_before = cluster.allocator.stats.live_blocks
        channel.send(worker, {1: 1.0})
        channel.receive(coordinator)
        assert cluster.allocator.stats.live_blocks == live_before

    def test_oversized_gradient_rejected(self, cluster):
        channel = GradientChannel.create(cluster, max_workers=2, max_entries=2)
        with pytest.raises(ValueError):
            channel.send(cluster.client(), {1: 1.0, 2: 2.0, 3: 3.0})


class TestTraining:
    def test_loss_decreases(self, cluster):
        report = run_training(
            cluster, dimensions=64, examples=128, workers=3, rounds=25, seed=4
        )
        assert report.losses[-1] < report.losses[0] * 0.7
        assert report.converged(0.7)

    def test_bounded_staleness_controls_refreshes(self, cluster):
        report = run_training(
            cluster, dimensions=32, examples=64, workers=2, rounds=12, staleness=4, seed=5
        )
        # Each worker refreshes every `staleness` rounds: 12/4 * 2 workers.
        assert report.worker_refreshes == 2 * (12 // 4 + (1 if 12 % 4 else 0))

    def test_stale_workers_still_converge(self, cluster):
        # The section 5.4 claim: bounded staleness preserves convergence.
        report = run_training(
            cluster, dimensions=48, examples=96, workers=3, rounds=40, staleness=8, seed=6
        )
        assert report.converged(0.7)

    def test_fresh_vs_stale_traffic(self):
        def far_traffic(staleness):
            cluster = Cluster(node_count=1, node_size=NODE_SIZE)
            run_training(
                cluster,
                dimensions=64,
                examples=64,
                workers=2,
                rounds=20,
                staleness=staleness,
                seed=7,
            )
            return cluster.total_metrics().far_accesses

        assert far_traffic(8) < far_traffic(1)


class TestWorkerCoordinator:
    def test_coordinator_applies_sgd(self, cluster):
        params = cluster.refreshable_vector(8, group_size=4)
        coordinator = Coordinator(
            params=params, client=cluster.client(), learning_rate=0.1
        )
        coordinator.apply({2: 1.0})
        assert coordinator.weights()[2] == pytest.approx(-0.1)
        reader = cluster.client()
        params.refresh(reader)
        assert word_to_float(params.get(reader, 2)) == pytest.approx(-0.1)

    def test_worker_reads_cached_params(self, cluster):
        data, _ = make_sparse_dataset(16, 8, seed=8)
        params = cluster.refreshable_vector(16, group_size=4)
        worker = Worker(
            worker_id=0,
            params=params,
            client=cluster.client(),
            shard=data,
            staleness=2,
        )
        rng = np.random.default_rng(0)
        gradient = worker.step(rng)
        assert gradient  # produced something
        assert worker.refreshes == 1
        worker.step(rng)  # staleness 2: no refresh this round
        assert worker.refreshes == 1
