"""Unit tests for the DrTM+H-style address-caching baseline."""

import pytest

from repro import Cluster
from repro.baselines import AddressCachingHashMap, OneSidedHashMap

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def cached(cluster):
    return AddressCachingHashMap(
        OneSidedHashMap.create(cluster.allocator, bucket_count=64)
    )


class TestCaching:
    def test_first_lookup_walks_then_caches(self, cluster, cached):
        c = cluster.client()
        cached.put(c, 1, 10)
        cached.get(c, 1)
        snapshot = c.metrics.snapshot()
        assert cached.get(c, 1) == 10
        assert c.metrics.delta(snapshot).far_accesses == 1  # direct read
        assert cached.stats.cache_hits == 2  # put() also primed it

    def test_metadata_grows_with_keys(self, cluster, cached):
        c = cluster.client()
        for k in range(50):
            cached.put(c, k, k)
            cached.get(c, k)
        assert cached.metadata_bytes(c) == 50 * 24

    def test_caches_are_per_client(self, cluster, cached):
        c1, c2 = cluster.client(), cluster.client()
        cached.put(c1, 1, 10)
        assert cached.metadata_bytes(c1) > 0
        assert cached.metadata_bytes(c2) == 0
        assert cached.get(c2, 1) == 10  # c2 pays the full walk
        assert cached.metadata_bytes(c2) > 0

    def test_invalidation_after_delete(self, cluster, cached):
        c = cluster.client()
        cached.put(c, 1, 10)
        cached.get(c, 1)
        cached.table.delete(c, 1)  # delete behind the cache's back...
        cached.put(c, 999, 1)  # unrelated
        # Stale address now points at a freed record; our allocator does
        # not recycle it into a matching key, so the key check fails.
        assert cached.get(c, 1) is None
        assert cached.stats.invalidations >= 1

    def test_cached_update_is_one_access(self, cluster, cached):
        c = cluster.client()
        cached.put(c, 2, 20)
        snapshot = c.metrics.snapshot()
        cached.put(c, 2, 30)
        assert c.metrics.delta(snapshot).far_accesses == 2  # read + write
        assert cached.get(c, 2) == 30

    def test_miss_not_cached(self, cluster, cached):
        c = cluster.client()
        assert cached.get(c, 404) is None
        assert cached.metadata_bytes(c) == 0

    def test_delete_via_wrapper(self, cluster, cached):
        c = cluster.client()
        cached.put(c, 3, 30)
        assert cached.delete(c, 3)
        assert cached.get(c, 3) is None
        assert len(cached) == 0
