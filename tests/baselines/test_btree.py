"""Unit + property tests for the one-sided B-tree baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.baselines import OneSidedBTree

NODE_SIZE = 16 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestOperations:
    def test_empty_lookup(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator)
        assert tree.get(cluster.client(), 1) is None

    def test_put_get(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator)
        c = cluster.client()
        tree.put(c, 5, 50)
        assert tree.get(c, 5) == 50

    def test_update(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator)
        c = cluster.client()
        tree.put(c, 5, 50)
        tree.put(c, 5, 60)
        assert tree.get(c, 5) == 60
        assert len(tree) == 1

    def test_sequential_inserts_split(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator, max_keys=3)
        c = cluster.client()
        for k in range(100):
            tree.put(c, k, k * 2)
        assert tree.stats.splits > 10
        assert tree.height > 2
        for k in range(100):
            assert tree.get(c, k) == k * 2

    def test_reverse_and_random_order(self, cluster):
        import random

        tree = OneSidedBTree.create(cluster.allocator, max_keys=5)
        c = cluster.client()
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.put(c, k, k + 1)
        for k in range(200):
            assert tree.get(c, k) == k + 1

    def test_fanout_must_be_odd(self, cluster):
        with pytest.raises(ValueError):
            OneSidedBTree.create(cluster.allocator, max_keys=4)


class TestAccessScaling:
    """Section 1: trees take O(log n) far accesses per lookup."""

    def test_lookup_cost_grows_with_height(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator, max_keys=3)
        c = cluster.client()
        costs = {}
        for n in (10, 100, 1000):
            while len(tree) < n:
                tree.put(c, len(tree) * 17 % 100_000, 1)
            key = 17  # present from the start
            snapshot = c.metrics.snapshot()
            tree.get(c, key)
            costs[n] = c.metrics.delta(snapshot).far_accesses
        assert costs[1000] > costs[10]
        # Logarithmic, not linear: 100x the items, far less than 100x cost.
        assert costs[1000] < costs[10] * 10

    def test_level_caching_cuts_lookup_accesses(self, cluster):
        def load(tree, client):
            for k in range(500):
                tree.put(client, k, k)

        uncached = OneSidedBTree.create(cluster.allocator, max_keys=5, cache_levels=0)
        cached = OneSidedBTree.create(cluster.allocator, max_keys=5, cache_levels=2)
        c1, c2 = cluster.client(), cluster.client()
        load(uncached, c1)
        load(cached, c2)
        cached.get(c2, 123)  # warm the cached levels

        s1 = c1.metrics.snapshot()
        uncached.get(c1, 123)
        cost_uncached = c1.metrics.delta(s1).far_accesses

        s2 = c2.metrics.snapshot()
        cached.get(c2, 123)
        cost_cached = c2.metrics.delta(s2).far_accesses

        assert cost_cached < cost_uncached
        # And the price: client memory for the cached levels.
        assert cached.cache_bytes(c2) > 0

    def test_cache_invalidate(self, cluster):
        tree = OneSidedBTree.create(cluster.allocator, max_keys=5, cache_levels=3)
        c = cluster.client()
        for k in range(100):
            tree.put(c, k, k)
        tree.get(c, 50)
        assert tree.cache_bytes(c) > 0
        tree.invalidate_cache(c)
        assert tree.cache_bytes(c) == 0
        assert tree.get(c, 50) == 50


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=1 << 30),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_model_dict(self, model):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        tree = OneSidedBTree.create(cluster.allocator, max_keys=3)
        client = cluster.client()
        for key, value in model.items():
            tree.put(client, key, value)
        for key, value in model.items():
            assert tree.get(client, key) == value
        assert tree.get(client, 10_001) is None
        assert len(tree) == len(model)
