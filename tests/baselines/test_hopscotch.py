"""Unit + property tests for the FaRM-style hopscotch baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.baselines import HopscotchHashMap

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def table(cluster):
    return HopscotchHashMap.create(cluster.allocator, slot_count=256, neighborhood=8)


class TestOperations:
    def test_put_get(self, cluster, table):
        c = cluster.client()
        table.put(c, 1, 10)
        assert table.get(c, 1) == 10

    def test_miss(self, cluster, table):
        assert table.get(cluster.client(), 123) is None

    def test_update(self, cluster, table):
        c = cluster.client()
        table.put(c, 1, 10)
        table.put(c, 1, 20)
        assert table.get(c, 1) == 20
        assert len(table) == 1

    def test_delete(self, cluster, table):
        c = cluster.client()
        table.put(c, 1, 10)
        assert table.delete(c, 1)
        assert table.get(c, 1) is None
        assert not table.delete(c, 1)

    def test_fills_with_displacement(self, cluster):
        table = HopscotchHashMap.create(
            cluster.allocator, slot_count=64, neighborhood=8
        )
        c = cluster.client()
        stored = {}
        for k in range(1, 45):  # ~70% load factor
            table.put(c, k, k + 1)
            stored[k] = k + 1
        for k, v in stored.items():
            assert table.get(c, k) == v, k

    def test_reserved_key_rejected(self, cluster, table):
        from repro.baselines.hopscotch import EMPTY_KEY

        with pytest.raises(ValueError):
            table.put(cluster.client(), EMPTY_KEY, 1)

    def test_overfull_triggers_resize(self, cluster):
        table = HopscotchHashMap.create(cluster.allocator, slot_count=8, neighborhood=4)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        for k in range(1, 100):
            table.put(c, k, k)
        # The FaRM-style recovery: the table doubled (possibly repeatedly)
        # and every key survived.
        assert table.stats.resizes >= 1
        assert table.slot_count > 8
        for k in range(1, 100):
            assert table.get(c, k) == k
        # Resizing is disruptive (section 5.2): it moved the whole table.
        assert c.metrics.delta(snapshot).bytes_written > 8 * 16

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            HopscotchHashMap.create(cluster.allocator, slot_count=4, neighborhood=8)


class TestFaRMTradeoffs:
    """Section 8: one wide read per lookup, at a bandwidth premium."""

    def test_lookup_is_one_far_access(self, cluster, table):
        c = cluster.client()
        table.put(c, 42, 1)
        snapshot = c.metrics.snapshot()
        table.get(c, 42)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_lookup_reads_whole_neighborhood(self, cluster, table):
        c = cluster.client()
        table.put(c, 42, 1)
        snapshot = c.metrics.snapshot()
        table.get(c, 42)
        # 8 slots x 16 bytes: the "items that will not be used" bandwidth.
        assert c.metrics.delta(snapshot).bytes_read == 8 * 16

    def test_wrapping_neighborhood_read(self, cluster):
        table = HopscotchHashMap.create(cluster.allocator, slot_count=16, neighborhood=8)
        c = cluster.client()
        # Find keys whose home is in the last 8 slots so the read wraps.
        from repro.core.ht_tree import hash_u64

        wrap_keys = [k for k in range(1, 500) if hash_u64(k) % 16 >= 12][:4]
        for k in wrap_keys:
            table.put(c, k, k * 3)
        for k in wrap_keys:
            assert table.get(c, k) == k * 3


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(min_value=1, max_value=60),
                st.integers(min_value=0, max_value=1 << 30),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_matches_model_dict(self, script):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        table = HopscotchHashMap.create(
            cluster.allocator, slot_count=256, neighborhood=8
        )
        client = cluster.client()
        model: dict[int, int] = {}
        for op, key, value in script:
            if op == "put":
                table.put(client, key, value)
                model[key] = value
            elif op == "get":
                assert table.get(client, key) == model.get(key)
            else:
                assert table.delete(client, key) == (key in model)
                model.pop(key, None)
        for key, value in model.items():
            assert table.get(client, key) == value
