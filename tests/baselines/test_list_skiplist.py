"""Unit tests for the linked-list and skip-list strawmen."""

import pytest

from repro import Cluster
from repro.baselines import FarLinkedList, FarSkipList

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestLinkedList:
    def test_push_get(self, cluster):
        lst = FarLinkedList.create(cluster.allocator)
        c = cluster.client()
        lst.push_front(c, 1, 10)
        lst.push_front(c, 2, 20)
        assert lst.get(c, 1) == 10
        assert lst.get(c, 2) == 20
        assert lst.get(c, 3) is None
        assert len(lst) == 2

    def test_items_in_lifo_order(self, cluster):
        lst = FarLinkedList.create(cluster.allocator)
        c = cluster.client()
        for k in range(5):
            lst.push_front(c, k, k)
        assert [k for k, _ in lst.items(c)] == [4, 3, 2, 1, 0]

    def test_lookup_cost_is_linear(self, cluster):
        lst = FarLinkedList.create(cluster.allocator)
        c = cluster.client()
        for k in range(50):
            lst.push_front(c, k, k)
        snapshot = c.metrics.snapshot()
        lst.get(c, 0)  # deepest element
        # Head read + 50 hops: the O(n) strawman of section 1.
        assert c.metrics.delta(snapshot).far_accesses == 51

    def test_push_is_constant_cost(self, cluster):
        lst = FarLinkedList.create(cluster.allocator)
        c = cluster.client()
        for k in range(20):
            lst.push_front(c, k, k)
        snapshot = c.metrics.snapshot()
        lst.push_front(c, 99, 99)
        assert c.metrics.delta(snapshot).far_accesses == 3  # read+write+CAS


class TestSkipList:
    def test_put_get(self, cluster):
        sl = FarSkipList.create(cluster.allocator, seed=1)
        c = cluster.client()
        sl.put(c, 10, 100)
        sl.put(c, 5, 50)
        sl.put(c, 20, 200)
        assert sl.get(c, 10) == 100
        assert sl.get(c, 5) == 50
        assert sl.get(c, 20) == 200
        assert sl.get(c, 15) is None

    def test_update(self, cluster):
        sl = FarSkipList.create(cluster.allocator, seed=1)
        c = cluster.client()
        sl.put(c, 10, 1)
        sl.put(c, 10, 2)
        assert sl.get(c, 10) == 2
        assert len(sl) == 1

    def test_many_keys(self, cluster):
        import random

        sl = FarSkipList.create(cluster.allocator, seed=7)
        c = cluster.client()
        keys = random.Random(0).sample(range(100_000), 300)
        for k in keys:
            sl.put(c, k, k ^ 0xFF)
        for k in keys:
            assert sl.get(c, k) == k ^ 0xFF

    def test_lookup_cost_is_logarithmic(self, cluster):
        import random

        sl = FarSkipList.create(cluster.allocator, seed=3)
        c = cluster.client()
        keys = random.Random(1).sample(range(1_000_000), 500)
        for k in keys:
            sl.put(c, k, 1)
        target = sorted(keys)[250]
        snapshot = c.metrics.snapshot()
        sl.get(c, target)
        cost = c.metrics.delta(snapshot).far_accesses
        # O(log n) far accesses: far below a linear scan, above 1.
        assert 2 <= cost < 100

    def test_deterministic_with_seed(self, cluster):
        results = []
        for _ in range(2):
            sl = FarSkipList.create(cluster.allocator, seed=9)
            c = cluster.client()
            for k in range(50):
                sl.put(c, k, k)
            results.append(sl.stats.node_reads)
        assert results[0] == results[1]
