"""Unit tests for the traditional one-sided hash table strawman."""

import pytest

from repro import Cluster
from repro.baselines import OneSidedHashMap

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def table(cluster):
    return OneSidedHashMap.create(cluster.allocator, bucket_count=64)


class TestOperations:
    def test_get_missing(self, cluster, table):
        assert table.get(cluster.client(), 1) is None

    def test_put_get(self, cluster, table):
        c = cluster.client()
        table.put(c, 1, 10)
        assert table.get(c, 1) == 10

    def test_update(self, cluster, table):
        c = cluster.client()
        table.put(c, 1, 10)
        table.put(c, 1, 20)
        assert table.get(c, 1) == 20
        assert len(table) == 1

    def test_chained_collisions(self, cluster):
        table = OneSidedHashMap.create(cluster.allocator, bucket_count=1)
        c = cluster.client()
        for k in range(10):
            table.put(c, k, k * 2)
        for k in range(10):
            assert table.get(c, k) == k * 2

    def test_delete_head_and_interior(self, cluster):
        table = OneSidedHashMap.create(cluster.allocator, bucket_count=1)
        c = cluster.client()
        for k in [1, 2, 3]:
            table.put(c, k, k)
        assert table.delete(c, 2)  # interior
        assert table.delete(c, 3)  # head (most recent insert)
        assert table.get(c, 1) == 1
        assert table.get(c, 2) is None
        assert not table.delete(c, 99)

    def test_shared_between_clients(self, cluster, table):
        c1, c2 = cluster.client(), cluster.client()
        table.put(c1, 5, 50)
        assert table.get(c2, 5) == 50

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            OneSidedHashMap.create(cluster.allocator, bucket_count=0)


class TestAccessCounts:
    """The section 1 mismatch: >= 2 far accesses per lookup."""

    def test_lookup_hit_is_at_least_two_accesses(self, cluster, table):
        c = cluster.client()
        table.put(c, 7, 70)
        snapshot = c.metrics.snapshot()
        table.get(c, 7)
        assert c.metrics.delta(snapshot).far_accesses >= 2

    def test_empty_bucket_miss_is_one_access(self, cluster, table):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        table.get(c, 7)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_chain_length_increases_accesses(self, cluster):
        table = OneSidedHashMap.create(cluster.allocator, bucket_count=1)
        c = cluster.client()
        for k in range(5):
            table.put(c, k, k)
        snapshot = c.metrics.snapshot()
        table.get(c, 0)  # deepest (first inserted, last in chain)
        assert c.metrics.delta(snapshot).far_accesses == 1 + 5

    def test_find_address(self, cluster, table):
        c = cluster.client()
        table.put(c, 3, 30)
        addr = table.find_address(c, 3)
        assert addr is not None
        assert table.find_address(c, 99) is None
