"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.fabric import Client, Fabric, IndirectionPolicy, make_placement

NODE_SIZE = 8 << 20  # 8 MiB per node keeps tests fast


@pytest.fixture(autouse=True)
def _deterministic_client_ids():
    """Reset the process-global client-id counter before every test.

    ``Client._next_id`` seeds client names, lease-lock tokens, and retry
    jitter; without the reset those depend on how many clients earlier
    tests created, making failures order-dependent and unreproducible in
    isolation.
    """
    Client.reset_ids()
    yield


@pytest.fixture
def cluster() -> Cluster:
    """A single-node cluster with reliable notifications."""
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def cluster2() -> Cluster:
    """A two-node, range-placed cluster."""
    return Cluster(node_count=2, node_size=NODE_SIZE)


@pytest.fixture
def striped_cluster() -> Cluster:
    """A four-node cluster with page-interleaved placement."""
    return Cluster(node_count=4, node_size=NODE_SIZE, interleaved=True)


@pytest.fixture
def client(cluster: Cluster) -> Client:
    return cluster.client()


@pytest.fixture
def fabric() -> Fabric:
    return Fabric(make_placement(2, NODE_SIZE))


@pytest.fixture
def striped_fabric() -> Fabric:
    return Fabric(make_placement(4, NODE_SIZE, interleaved=True, granularity=4096))


@pytest.fixture
def error_policy_cluster() -> Cluster:
    """Two nodes with the section 7.1 ERROR indirection policy."""
    return Cluster(
        node_count=2,
        node_size=NODE_SIZE,
        indirection_policy=IndirectionPolicy.ERROR,
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration/stress tests"
    )
