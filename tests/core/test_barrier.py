"""Unit tests for far barriers (section 5.1)."""

import pytest

from repro import Cluster
from repro.core.barrier import BarrierError

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestArrival:
    def test_last_arriver_flagged(self, cluster):
        barrier = cluster.far_barrier(3)
        clients = [cluster.client() for _ in range(3)]
        tickets = [barrier.arrive(c) for c in clients]
        assert [t.is_last for t in tickets] == [False, False, True]

    def test_single_participant(self, cluster):
        barrier = cluster.far_barrier(1)
        ticket = barrier.arrive(cluster.client())
        assert ticket.is_last

    def test_arrival_is_one_far_access_plus_subscription(self, cluster):
        barrier = cluster.far_barrier(2)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        barrier.arrive(c)
        # One decrement + one subscription install.
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_last_arrival_is_exactly_one_far_access(self, cluster):
        barrier = cluster.far_barrier(2)
        barrier.arrive(cluster.client())
        last = cluster.client()
        snapshot = last.metrics.snapshot()
        barrier.arrive(last)
        assert last.metrics.delta(snapshot).far_accesses == 1

    def test_over_arrival_raises(self, cluster):
        barrier = cluster.far_barrier(1)
        barrier.arrive(cluster.client())
        with pytest.raises(BarrierError):
            barrier.arrive(cluster.client())

    def test_participants_validated(self, cluster):
        with pytest.raises(ValueError):
            cluster.far_barrier(0)


class TestCompletion:
    def test_waiters_notified_when_counter_hits_zero(self, cluster):
        barrier = cluster.far_barrier(3)
        clients = [cluster.client() for _ in range(3)]
        tickets = [barrier.arrive(clients[0]), barrier.arrive(clients[1])]
        assert not barrier.wait_done(clients[0], tickets[0])
        barrier.arrive(clients[2])  # last
        assert barrier.wait_done(clients[0], tickets[0])
        assert barrier.wait_done(clients[1], tickets[1])

    def test_waiting_costs_no_far_accesses(self, cluster):
        barrier = cluster.far_barrier(2)
        waiter = cluster.client()
        ticket = barrier.arrive(waiter)
        blocked = waiter.metrics.far_accesses
        barrier.wait_done(waiter, ticket)  # not done yet
        barrier.arrive(cluster.client())
        assert barrier.wait_done(waiter, ticket)
        assert waiter.metrics.far_accesses == blocked

    def test_poll_is_the_expensive_alternative(self, cluster):
        barrier = cluster.far_barrier(2)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        barrier.poll(c)
        barrier.poll(c)
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_foreign_notifications_returned_to_inbox(self, cluster):
        barrier = cluster.far_barrier(2)
        waiter = cluster.client()
        # An unrelated subscription delivering into the same inbox.
        unrelated = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(waiter, unrelated, 8)
        ticket = barrier.arrive(waiter)
        cluster.client().write_u64(unrelated, 1)
        barrier.arrive(cluster.client())
        assert barrier.wait_done(waiter, ticket)
        assert waiter.pending_notifications() == 1  # the unrelated one


class TestReuse:
    def test_reset_rearms(self, cluster):
        barrier = cluster.far_barrier(2)
        c1, c2 = cluster.client(), cluster.client()
        barrier.arrive(c1)
        t2 = barrier.arrive(c2)
        assert t2.is_last
        barrier.reset(c2)
        assert barrier.generation == 1
        t1b = barrier.arrive(c1)
        t2b = barrier.arrive(c2)
        assert t2b.is_last and not t1b.is_last
