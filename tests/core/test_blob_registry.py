"""Unit tests for the blob store and the naming registry."""

import pytest

from repro import Cluster
from repro.alloc import EpochReclaimer
from repro.core.blob import FarBlobStore
from repro.core.registry import FarRegistry, RegistryError, name_hash

NODE_SIZE = 16 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestBlobStore:
    @pytest.fixture
    def store(self, cluster):
        return cluster.blob_store()

    def test_roundtrip(self, cluster, store):
        c = cluster.client()
        store.put(c, 1, b"hello far memory")
        assert store.get(c, 1) == b"hello far memory"

    def test_missing(self, cluster, store):
        assert store.get(cluster.client(), 404) is None
        assert store.length(cluster.client(), 404) is None

    def test_empty_blob(self, cluster, store):
        c = cluster.client()
        store.put(c, 2, b"")
        assert store.get(c, 2) == b""
        assert store.length(c, 2) == 0

    def test_replace(self, cluster, store):
        c = cluster.client()
        store.put(c, 3, b"old")
        store.put(c, 3, b"new value")
        assert store.get(c, 3) == b"new value"

    def test_large_blob_two_phase_read(self, cluster, store):
        c = cluster.client()
        big = bytes(range(256)) * 8  # 2 KiB > inline hint
        store.put(c, 4, big)
        assert store.get(c, 4) == big
        assert store.stats.overflow_reads == 1

    def test_small_blob_get_is_two_far_accesses(self, cluster, store):
        c = cluster.client()
        store.put(c, 5, b"tiny")
        store.get(c, 5)  # warm tree cache
        snapshot = c.metrics.snapshot()
        store.get(c, 5)
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_delete(self, cluster, store):
        c = cluster.client()
        store.put(c, 6, b"bye")
        assert store.delete(c, 6)
        assert store.get(c, 6) is None
        assert not store.delete(c, 6)

    def test_reclaimer_recycles_regions(self, cluster):
        reclaimer = EpochReclaimer(cluster.allocator)
        store = FarBlobStore.create(
            cluster.allocator, cluster.ht_tree(), reclaimer=reclaimer
        )
        c = cluster.client()
        pid = reclaimer.register()
        store.put(c, 1, b"v1")
        store.put(c, 1, b"v2")  # retires v1's region
        store.delete(c, 1)  # retires v2's region
        reclaimer.quiesce(pid)
        reclaimer.quiesce(pid)
        assert reclaimer.stats.reclaimed == 2

    def test_inline_hint_validated(self, cluster):
        with pytest.raises(ValueError):
            FarBlobStore.create(cluster.allocator, cluster.ht_tree(), inline_hint=4)


class TestNameHash:
    def test_stable(self):
        assert name_hash("jobs") == name_hash("jobs")

    def test_distinct(self):
        assert name_hash("a") != name_hash("b")

    def test_never_sentinel(self):
        for name in ("", "x", "collision-probe"):
            assert name_hash(name) not in (0, 1)


class TestRegistry:
    @pytest.fixture
    def registry(self, cluster):
        return cluster.registry(capacity=16)

    def test_raw_roundtrip(self, cluster, registry):
        c = cluster.client()
        registry.register(c, "blob", 1, b"payload")
        assert registry.lookup(c, "blob") == (1, b"payload")

    def test_missing(self, cluster, registry):
        assert registry.lookup(cluster.client(), "nope") is None

    def test_duplicate_rejected(self, cluster, registry):
        c = cluster.client()
        registry.register(c, "x", 1, b"1")
        with pytest.raises(RegistryError):
            registry.register(c, "x", 1, b"2")

    def test_unregister_and_reuse(self, cluster, registry):
        c = cluster.client()
        registry.register(c, "temp", 1, b"1")
        assert registry.unregister(c, "temp")
        assert registry.lookup(c, "temp") is None
        registry.register(c, "temp", 1, b"2")  # tombstone slot reused
        assert registry.lookup(c, "temp") == (1, b"2")

    def test_probing_past_tombstones(self, cluster, registry):
        c = cluster.client()
        names = [f"svc-{i}" for i in range(10)]
        for name in names:
            registry.register(c, name, 1, name.encode())
        registry.unregister(c, names[3])
        for name in names:
            expected = None if name == names[3] else (1, name.encode())
            assert registry.lookup(c, name) == expected

    def test_capacity_exhaustion(self, cluster):
        registry = cluster.registry(capacity=4)
        c = cluster.client()
        for i in range(4):
            registry.register(c, f"n{i}", 1, b"x")
        with pytest.raises(RegistryError):
            registry.register(c, "overflow", 1, b"x")

    def test_attach_by_address(self, cluster, registry):
        c = cluster.client()
        registry.register(c, "k", 1, b"v")
        adopted = FarRegistry.attach(cluster.allocator, registry.base, c)
        assert adopted.capacity == registry.capacity
        assert adopted.lookup(c, "k") == (1, b"v")


class TestTypedRegistry:
    def test_counter(self, cluster):
        registry = cluster.registry()
        c1, c2 = cluster.client(), cluster.client()
        counter = cluster.far_counter()
        counter.add(c1, 41)
        registry.register_counter(c1, "hits", counter)
        adopted = registry.lookup_counter(c2, "hits")
        adopted.increment(c2)
        assert counter.read(c1) == 42

    def test_vector(self, cluster):
        registry = cluster.registry()
        c1, c2 = cluster.client(), cluster.client()
        vector = cluster.far_vector(8)
        vector.set(c1, 3, 9)
        registry.register_vector(c1, "v", vector)
        adopted = registry.lookup_vector(c2, "v")
        assert adopted.length == 8
        assert adopted.get(c2, 3) == 9

    def test_queue(self, cluster):
        registry = cluster.registry()
        producer, consumer = cluster.client(), cluster.client()
        queue = cluster.far_queue(capacity=32, max_clients=4)
        registry.register_queue(producer, "jobs", queue)
        queue.enqueue(producer, 5)
        adopted = registry.lookup_queue(consumer, "jobs")
        assert adopted.dequeue(consumer) == 5

    def test_tree(self, cluster):
        registry = cluster.registry()
        writer, reader = cluster.client(), cluster.client()
        tree = cluster.ht_tree(bucket_count=64)
        tree.put(writer, 7, 70)
        registry.register_tree(writer, "index", tree)
        adopted = registry.lookup_tree(reader, "index", cluster.notifications)
        assert adopted.get(reader, 7) == 70

    def test_kind_mismatch(self, cluster):
        registry = cluster.registry()
        c = cluster.client()
        registry.register_counter(c, "thing", cluster.far_counter())
        with pytest.raises(RegistryError):
            registry.lookup_queue(c, "thing")

    def test_lookup_missing_typed(self, cluster):
        registry = cluster.registry()
        assert registry.lookup_counter(cluster.client(), "ghost") is None
