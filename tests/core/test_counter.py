"""Unit tests for far counters (section 5.1)."""

import pytest

from repro import Cluster
from repro.core.counter import FarCounter
from repro.fabric.wire import U64_MASK

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def client(cluster):
    return cluster.client()


class TestFarCounter:
    def test_initial_value(self, cluster, client):
        counter = FarCounter.create(cluster.allocator, initial=7)
        assert counter.read(client) == 7

    def test_add_returns_old(self, cluster, client):
        counter = cluster.far_counter()
        assert counter.add(client, 5) == 0
        assert counter.add(client, 3) == 5
        assert counter.read(client) == 8

    def test_increment_decrement(self, cluster, client):
        counter = cluster.far_counter()
        counter.increment(client)
        counter.increment(client)
        counter.decrement(client)
        assert counter.read(client) == 1

    def test_decrement_below_zero_wraps(self, cluster, client):
        counter = cluster.far_counter()
        counter.decrement(client)
        assert counter.read(client) == U64_MASK
        assert counter.read_signed(client) == -1

    def test_set(self, cluster, client):
        counter = cluster.far_counter()
        counter.set(client, 1000)
        assert counter.read(client) == 1000

    def test_compare_and_set(self, cluster, client):
        counter = cluster.far_counter()
        assert counter.compare_and_set(client, 0, 5)
        assert not counter.compare_and_set(client, 0, 9)
        assert counter.read(client) == 5

    def test_every_operation_is_one_far_access(self, cluster, client):
        counter = cluster.far_counter()
        snapshot = client.metrics.snapshot()
        counter.read(client)
        counter.set(client, 1)
        counter.add(client, 2)
        counter.increment(client)
        counter.compare_and_set(client, 5, 6)
        assert client.metrics.delta(snapshot).far_accesses == 5

    def test_shared_across_clients(self, cluster):
        counter = cluster.far_counter()
        clients = [cluster.client() for _ in range(4)]
        for c in clients:
            for _ in range(10):
                counter.increment(c)
        assert counter.read(clients[0]) == 40

    def test_attach(self, cluster, client):
        counter = cluster.far_counter()
        counter.set(client, 3)
        adopted = FarCounter.attach(counter.address)
        assert adopted.read(client) == 3

    def test_creation_charges_no_client(self, cluster):
        client = cluster.client()
        FarCounter.create(cluster.allocator, initial=5)
        assert client.metrics.far_accesses == 0
