"""Unit + property tests for the HT-tree map (section 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.core.ht_tree import LEAF_BYTES, hash_u64
from repro.fabric.wire import U64_MASK

NODE_SIZE = 16 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


def make_tree(cluster, **kwargs):
    defaults = dict(bucket_count=64, max_chain=4)
    defaults.update(kwargs)
    return cluster.ht_tree(**defaults)


class TestBasicOperations:
    def test_get_missing(self, cluster):
        tree = make_tree(cluster)
        assert tree.get(cluster.client(), 42) is None

    def test_put_get(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 1, 100)
        assert tree.get(c, 1) == 100

    def test_update_in_place(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 1, 100)
        tree.put(c, 1, 200)
        assert tree.get(c, 1) == 200
        assert tree.stats.updates == 1
        assert len(tree) == 1

    def test_many_keys(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        for k in range(1000):
            tree.put(c, k * 13 + 1, k)
        for k in range(1000):
            assert tree.get(c, k * 13 + 1) == k
        assert len(tree) == 1000

    def test_delete(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 5, 50)
        assert tree.delete(c, 5)
        assert tree.get(c, 5) is None
        assert not tree.delete(c, 5)
        assert len(tree) == 0

    def test_delete_from_chain_interior(self, cluster):
        # Force several keys into one bucket with a tiny table.
        tree = make_tree(cluster, bucket_count=1, max_chain=100)
        c = cluster.client()
        for k in [1, 2, 3, 4]:
            tree.put(c, k, k * 10)
        assert tree.delete(c, 2)
        assert tree.get(c, 2) is None
        for k in [1, 3, 4]:
            assert tree.get(c, k) == k * 10

    def test_boundary_keys(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 0, 1)
        tree.put(c, U64_MASK, 2)
        assert tree.get(c, 0) == 1
        assert tree.get(c, U64_MASK) == 2

    def test_key_validation(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        with pytest.raises(ValueError):
            tree.put(c, -1, 0)
        with pytest.raises(ValueError):
            tree.get(c, 1 << 64)

    def test_zero_value_distinct_from_missing(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 7, 0)
        assert tree.get(c, 7) == 0
        assert tree.get(c, 8) is None


class TestFarAccessClaims:
    """Section 5.2: lookups in one far access, stores in two."""

    def test_lookup_hit_is_one_far_access(self, cluster):
        tree = make_tree(cluster, bucket_count=4096)
        c = cluster.client()
        tree.put(c, 12345, 1)
        tree.get(c, 12345)  # warm the tree cache
        snapshot = c.metrics.snapshot()
        assert tree.get(c, 12345) == 1
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_lookup_miss_is_one_far_access(self, cluster):
        tree = make_tree(cluster, bucket_count=4096)
        c = cluster.client()
        tree.get(c, 1)  # warm cache
        snapshot = c.metrics.snapshot()
        assert tree.get(c, 999) is None
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_update_is_two_far_accesses(self, cluster):
        tree = make_tree(cluster, bucket_count=4096)
        c = cluster.client()
        tree.put(c, 5, 1)
        snapshot = c.metrics.snapshot()
        tree.put(c, 5, 2)  # update head-of-chain in place
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_insert_is_three_far_accesses(self, cluster):
        tree = make_tree(cluster, bucket_count=4096)
        c = cluster.client()
        tree.get(c, 1)  # warm cache
        snapshot = c.metrics.snapshot()
        tree.put(c, 42, 1)  # fresh key: check + record write + CAS
        assert c.metrics.delta(snapshot).far_accesses == 3

    def test_chain_hops_add_reads(self, cluster):
        tree = make_tree(cluster, bucket_count=1, max_chain=100)
        c = cluster.client()
        for k in range(5):
            tree.put(c, k, k)
        tree.get(c, 0)
        snapshot = c.metrics.snapshot()
        # Key 0 was inserted first: it is deepest in the chain (head is 4).
        tree.get(c, 0)
        assert c.metrics.delta(snapshot).far_accesses == 5

    def test_cache_traversal_is_near_memory(self, cluster):
        tree = make_tree(cluster, bucket_count=4096)
        c = cluster.client()
        tree.put(c, 1, 1)
        near_before = c.metrics.near_accesses
        tree.get(c, 1)
        assert c.metrics.near_accesses > near_before


class TestSplits:
    def test_split_triggers_on_collisions(self, cluster):
        tree = make_tree(cluster, bucket_count=8, max_chain=3)
        c = cluster.client()
        for k in range(200):
            tree.put(c, k, k)
        assert tree.stats.splits >= 1
        assert tree.leaf_count() > 1
        for k in range(200):
            assert tree.get(c, k) == k, k

    def test_split_preserves_all_items(self, cluster):
        tree = make_tree(cluster, bucket_count=4, max_chain=2)
        c = cluster.client()
        keys = [k * 1000003 % (1 << 40) for k in range(150)]
        for k in keys:
            tree.put(c, k, k & 0xFFFF)
        for k in keys:
            assert tree.get(c, k) == k & 0xFFFF

    def test_other_tables_unaffected_by_split(self, cluster):
        # Section 5.2: "it is split and added to the tree, without
        # affecting the other hash tables."
        tree = make_tree(cluster, bucket_count=8, max_chain=3, initial_leaves=4)
        c = cluster.client()
        low_keys = list(range(100))  # leaf 0 only
        for k in low_keys:
            tree.put(c, k, k)
        splits = tree.stats.splits
        assert splits >= 1
        # Tables for the other ranges never split.
        assert tree.leaf_count() == 4 + splits

    def test_stale_client_detects_split_via_tombstone(self, cluster):
        tree = make_tree(cluster, bucket_count=8, max_chain=3)
        writer = cluster.client()
        reader = cluster.client()
        tree.put(writer, 1, 11)
        assert tree.get(reader, 1) == 11  # reader caches the tree
        for k in range(2, 200):  # force splits via the writer
            tree.put(writer, k, k)
        assert tree.stats.splits >= 1
        stale_before = tree.stats.stale_refreshes
        assert tree.get(reader, 1) == 11  # stale cache must self-heal
        assert tree.stats.stale_refreshes > stale_before

    def test_notify_mode_invalidates_eagerly(self, cluster):
        tree = make_tree(cluster, bucket_count=8, max_chain=3, cache_mode="notify")
        writer = cluster.client()
        reader = cluster.client()
        tree.put(writer, 1, 11)
        assert tree.get(reader, 1) == 11
        for k in range(2, 200):
            tree.put(writer, k, k)
        assert tree.stats.splits >= 1
        assert tree.get(reader, 1) == 11
        assert tree.stats.notify_invalidations >= 1


class TestCacheFootprint:
    def test_cache_is_leaves_only(self, cluster):
        # Section 5.2 scaling: client cache is one entry per hash table,
        # not per item.
        tree = make_tree(cluster, bucket_count=16, max_chain=4)
        c = cluster.client()
        for k in range(500):
            tree.put(c, k, k)
        expected = tree.leaf_count() * LEAF_BYTES
        assert tree.cache_bytes(c) == expected
        assert tree.cache_bytes(c) < 500 * 32  # far below item storage


class TestScan:
    def test_scan_returns_sorted_range(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        for k in range(0, 100, 3):
            tree.put(c, k, k * 10)
        result = tree.scan(c, 10, 40)
        assert result == [(k, k * 10) for k in range(12, 41, 3)]

    def test_scan_empty_range(self, cluster):
        tree = make_tree(cluster)
        c = cluster.client()
        tree.put(c, 5, 50)
        assert tree.scan(c, 100, 200) == []
        assert tree.scan(c, 10, 5) == []

    def test_scan_whole_keyspace(self, cluster):
        from repro.fabric.wire import U64_MASK

        tree = make_tree(cluster)
        c = cluster.client()
        keys = {k * 7919 % 100_000: k for k in range(200)}
        for key, value in keys.items():
            tree.put(c, key, value)
        result = tree.scan(c, 0, U64_MASK)
        assert result == sorted(keys.items())

    def test_scan_across_splits(self, cluster):
        tree = make_tree(cluster, bucket_count=8, max_chain=2)
        c = cluster.client()
        for k in range(300):
            tree.put(c, k, k + 1)
        assert tree.stats.splits >= 1
        assert tree.scan(c, 50, 250) == [(k, k + 1) for k in range(50, 251)]

    def test_scan_touches_only_overlapping_tables(self, cluster):
        tree = make_tree(cluster, bucket_count=64, initial_leaves=8)
        c = cluster.client()
        step = ((1 << 64) // 8)
        for i in range(8):
            tree.put(c, i * step + 1, i)
        tree.scan(c, 0, 1)  # warm cache
        snapshot = c.metrics.snapshot()
        tree.scan(c, 0, step - 1)  # one leaf's range only
        # One bucket-array read + one chain gather for a single table.
        assert c.metrics.delta(snapshot).far_accesses <= 2

    def test_stale_scan_self_heals(self, cluster):
        tree = make_tree(cluster, bucket_count=8, max_chain=2)
        writer, reader = cluster.client(), cluster.client()
        tree.put(writer, 1, 11)
        assert tree.scan(reader, 0, 10) == [(1, 11)]  # reader caches tree
        for k in range(2, 200):
            tree.put(writer, k, k)
        assert tree.stats.splits >= 1
        result = tree.scan(reader, 0, 10)
        assert result == [(k, 11 if k == 1 else k) for k in range(1, 11)]


class TestHash:
    def test_hash_is_deterministic(self):
        assert hash_u64(12345) == hash_u64(12345)

    def test_hash_spreads(self):
        buckets = [hash_u64(k) % 64 for k in range(1000)]
        counts = [buckets.count(b) for b in range(64)]
        assert max(counts) < 40  # no catastrophic clustering


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=1 << 30),
            ),
            min_size=1,
            max_size=150,
        )
    )
    def test_matches_model_dict(self, script):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        tree = cluster.ht_tree(bucket_count=8, max_chain=3)
        client = cluster.client()
        model: dict[int, int] = {}
        for op, key, value in script:
            if op == "put":
                tree.put(client, key, value)
                model[key] = value
            elif op == "get":
                assert tree.get(client, key) == model.get(key)
            else:
                assert tree.delete(client, key) == (key in model)
                model.pop(key, None)
        for key, value in model.items():
            assert tree.get(client, key) == value
        assert len(tree) == len(model)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 16))
    def test_two_clients_converge(self, seed):
        import random

        rng = random.Random(seed)
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        tree = cluster.ht_tree(bucket_count=8, max_chain=3)
        clients = [cluster.client(), cluster.client()]
        model: dict[int, int] = {}
        for _ in range(120):
            client = clients[rng.randrange(2)]
            key = rng.randrange(100)
            value = rng.randrange(1 << 20)
            tree.put(client, key, value)
            model[key] = value
        for key, value in model.items():
            for client in clients:
                assert tree.get(client, key) == value
