"""Unit tests for far mutexes (section 5.1)."""

import pytest

from repro import Cluster
from repro.core.mutex import MutexError

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def mutex(cluster):
    return cluster.far_mutex()


class TestAcquireRelease:
    def test_acquire_free_mutex(self, cluster, mutex):
        c = cluster.client()
        assert mutex.try_acquire(c)
        assert mutex.holder(c) == c.client_id

    def test_second_acquire_fails(self, cluster, mutex):
        c1, c2 = cluster.client(), cluster.client()
        assert mutex.try_acquire(c1)
        assert not mutex.try_acquire(c2)
        assert mutex.stats.cas_failures == 1

    def test_release_frees(self, cluster, mutex):
        c1, c2 = cluster.client(), cluster.client()
        mutex.try_acquire(c1)
        mutex.release(c1)
        assert mutex.try_acquire(c2)

    def test_release_by_non_holder_raises(self, cluster, mutex):
        c1, c2 = cluster.client(), cluster.client()
        mutex.try_acquire(c1)
        with pytest.raises(MutexError):
            mutex.release(c2)

    def test_release_unheld_raises(self, cluster, mutex):
        with pytest.raises(MutexError):
            mutex.release(cluster.client())

    def test_acquire_costs_one_far_access(self, cluster, mutex):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        mutex.try_acquire(c)
        assert c.metrics.delta(snapshot).far_accesses == 1


class TestNotificationHandoff:
    def test_waiter_notified_on_release(self, cluster, mutex):
        holder, waiter = cluster.client(), cluster.client()
        mutex.try_acquire(holder)
        sub = mutex.acquire_or_wait(waiter)
        assert sub is not None
        assert waiter.pending_notifications() == 0
        mutex.release(holder)
        assert waiter.pending_notifications() == 1
        waiter.poll_notifications()
        assert mutex.retry_on_free(waiter, sub)
        assert mutex.holder(holder) == waiter.client_id

    def test_acquire_or_wait_fastpath(self, cluster, mutex):
        c = cluster.client()
        assert mutex.acquire_or_wait(c) is None  # acquired immediately

    def test_lost_race_keeps_subscription_armed(self, cluster, mutex):
        holder, w1, w2 = cluster.client(), cluster.client(), cluster.client()
        mutex.try_acquire(holder)
        sub1 = mutex.acquire_or_wait(w1)
        sub2 = mutex.acquire_or_wait(w2)
        mutex.release(holder)
        w1.poll_notifications()
        w2.poll_notifications()
        assert mutex.retry_on_free(w1, sub1)  # w1 wins
        assert not mutex.retry_on_free(w2, sub2)  # w2 loses, stays armed
        mutex.release(w1)
        assert w2.pending_notifications() == 1  # notified again
        w2.poll_notifications()
        assert mutex.retry_on_free(w2, sub2)

    def test_waiting_avoids_far_polling(self, cluster, mutex):
        # The whole point: a blocked waiter spends no far accesses while
        # blocked (contrast with spinning on read_u64).
        holder, waiter = cluster.client(), cluster.client()
        mutex.try_acquire(holder)
        mutex.acquire_or_wait(waiter)
        blocked = waiter.metrics.far_accesses
        for _ in range(100):  # time passes; waiter polls only its inbox
            waiter.poll_notifications()
        assert waiter.metrics.far_accesses == blocked

    def test_stats(self, cluster, mutex):
        holder, waiter = cluster.client(), cluster.client()
        mutex.try_acquire(holder)
        mutex.acquire_or_wait(waiter)
        mutex.release(holder)
        assert mutex.stats.acquires == 1
        assert mutex.stats.notify_waits == 1
        assert mutex.stats.releases == 1
