"""Unit + property tests for the far queue (section 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.core.queue import EMPTY
from repro.fabric.errors import FabricError, QueueEmpty, QueueFull

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


def make_queue(cluster, capacity=64, max_clients=4, **kwargs):
    return cluster.far_queue(capacity=capacity, max_clients=max_clients, **kwargs)


class TestBasics:
    def test_fifo_order(self, cluster):
        q = make_queue(cluster)
        c = cluster.client()
        for i in range(10):
            q.enqueue(c, i * 7)
        assert [q.dequeue(c) for _ in range(10)] == [i * 7 for i in range(10)]

    def test_dequeue_empty_raises(self, cluster):
        q = make_queue(cluster)
        with pytest.raises(QueueEmpty):
            q.dequeue(cluster.client())

    def test_try_dequeue_returns_none(self, cluster):
        q = make_queue(cluster)
        assert q.try_dequeue(cluster.client()) is None

    def test_sentinel_value_rejected(self, cluster):
        q = make_queue(cluster)
        with pytest.raises(ValueError):
            q.enqueue(cluster.client(), EMPTY)

    def test_interleaved_producers_consumers(self, cluster):
        q = make_queue(cluster)
        producers = [cluster.client() for _ in range(2)]
        consumer = cluster.client()
        expected = []
        for i in range(30):
            producer = producers[i % 2]
            q.enqueue(producer, i)
            expected.append(i)
        got = [q.dequeue(consumer) for _ in range(30)]
        assert got == expected

    def test_size_estimate(self, cluster):
        q = make_queue(cluster)
        c = cluster.client()
        for i in range(5):
            q.enqueue(c, i)
        assert q.size_estimate(c) == 5
        q.dequeue(c)
        assert q.size_estimate(c) == 4

    def test_capacity_validation(self, cluster):
        with pytest.raises(ValueError):
            make_queue(cluster, capacity=8, max_clients=4)
        with pytest.raises(ValueError):
            make_queue(cluster, capacity=64, max_clients=0)
        with pytest.raises(ValueError):
            make_queue(cluster, capacity=64, max_clients=4, clear_batch=0)

    def test_too_many_clients_rejected(self, cluster):
        q = make_queue(cluster, max_clients=2)
        q.enqueue(cluster.client(), 1)
        q.enqueue(cluster.client(), 2)
        with pytest.raises(FabricError):
            q.enqueue(cluster.client(), 3)


class TestItemNotifications:
    def test_consumer_notified_on_enqueue(self, cluster):
        q = make_queue(cluster)
        producer, consumer = cluster.client(), cluster.client()
        q.subscribe_items(cluster.notifications, consumer)
        assert consumer.pending_notifications() == 0
        q.enqueue(producer, 7)
        assert consumer.pending_notifications() >= 1
        consumer.poll_notifications()
        assert q.dequeue(consumer) == 7

    def test_blocked_consumer_spends_no_far_accesses(self, cluster):
        q = make_queue(cluster)
        consumer = cluster.client()
        with pytest.raises(QueueEmpty):
            q.dequeue(consumer)
        q.subscribe_items(cluster.notifications, consumer)
        blocked = consumer.metrics.far_accesses
        for _ in range(50):  # waiting: drain inbox only
            consumer.poll_notifications()
        assert consumer.metrics.far_accesses == blocked


class TestFastPathClaims:
    """The section 5.3 performance claims: one far access per op."""

    def test_steady_state_enqueue_is_one_far_access(self, cluster):
        q = make_queue(cluster)
        c = cluster.client()
        q.enqueue(c, 0)  # first op pays the pointer-gather warm-up
        snapshot = c.metrics.snapshot()
        q.enqueue(c, 1)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_steady_state_dequeue_is_one_far_access(self, cluster):
        q = make_queue(cluster, clear_batch=100)
        c = cluster.client()
        for i in range(5):
            q.enqueue(c, i)
        q.dequeue(c)
        snapshot = c.metrics.snapshot()
        q.dequeue(c)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_fast_path_fraction_high_in_steady_state(self, cluster):
        q = make_queue(cluster, capacity=128, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        for i in range(1000):
            q.enqueue(producer, i)
            assert q.dequeue(consumer) == i
        assert q.stats.fast_path_fraction() > 0.95

    def test_amortised_accesses_near_one(self, cluster):
        q = make_queue(cluster, capacity=128, max_clients=2, clear_batch=16)
        producer, consumer = cluster.client(), cluster.client()
        q.enqueue(producer, 0)
        q.dequeue(consumer)
        ops = 500
        p_snap = producer.metrics.snapshot()
        c_snap = consumer.metrics.snapshot()
        for i in range(ops):
            q.enqueue(producer, i)
            q.dequeue(consumer)
        per_enqueue = producer.metrics.delta(p_snap).far_accesses / ops
        per_dequeue = consumer.metrics.delta(c_snap).far_accesses / ops
        assert per_enqueue < 1.15
        assert per_dequeue < 1.15


class TestWrapAround:
    def test_many_laps_preserve_fifo(self, cluster):
        q = make_queue(cluster, capacity=32, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        for i in range(500):  # ~15 laps around a 32-slot array
            q.enqueue(producer, i + 1)
            assert q.dequeue(consumer) == i + 1
        assert q.stats.enqueue_wraps >= 10
        assert q.stats.dequeue_wraps >= 10

    def test_wrap_with_queued_items(self, cluster):
        q = make_queue(cluster, capacity=32, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        expected = []
        produced = consumed = 0
        for round_ in range(40):
            for _ in range(8):
                q.enqueue(producer, produced)
                expected.append(produced)
                produced += 1
            for _ in range(8):
                assert q.dequeue(consumer) == expected[consumed]
                consumed += 1

    def test_pointer_never_escapes_slack(self, cluster):
        q = make_queue(cluster, capacity=32, max_clients=4)
        clients = [cluster.client() for _ in range(4)]
        for i in range(400):
            c = clients[i % 4]
            q.enqueue(c, i)
            q.dequeue(c)
        # _check_pointer would have raised if the invariant broke.


class TestEmptyDetection:
    def test_empty_undo_restores_head(self, cluster):
        q = make_queue(cluster)
        c = cluster.client()
        q.enqueue(c, 1)
        q.dequeue(c)
        with pytest.raises(QueueEmpty):
            q.dequeue(c)
        assert q.stats.empty_undos == 1
        # Queue still works after the undo.
        q.enqueue(c, 2)
        assert q.dequeue(c) == 2

    def test_racing_dequeuers_arm_claims(self, cluster):
        q = make_queue(cluster)
        c1, c2 = cluster.client(), cluster.client()
        q.enqueue(c1, 1)
        q.dequeue(c1)
        # Simulate the race: c1 and c2 both overshoot an empty queue. The
        # first undo succeeds; the second client must CAS against a moved
        # head and arm a claim instead. We force the interleaving by doing
        # the faai halves manually through the public API: two dequeues
        # back to back on an empty queue from different clients.
        with pytest.raises(QueueEmpty):
            q.dequeue(c1)
        with pytest.raises(QueueEmpty):
            q.dequeue(c2)
        # Both undone or one claimed; either way, enqueue/dequeue recovers.
        q.enqueue(c1, 42)
        got = q.try_dequeue(c2)
        if got is None:  # c2 holds the claim on the slot 42 landed in
            got = q.try_dequeue(c2)
        assert got == 42

    def test_claim_consumed_on_later_dequeue(self, cluster):
        q = make_queue(cluster)
        c1, c2 = cluster.client(), cluster.client()
        # Interleave a true claim: dequeue from empty with a head that
        # can't be undone because another dequeuer moved it first.
        q.enqueue(c1, 1)
        q.dequeue(c1)
        # Manually advance the head as if another dequeuer overshot, so
        # c2's undo CAS fails and it must claim.
        helper = cluster.client()
        from repro.fabric.wire import WORD

        with pytest.raises(QueueEmpty):
            q.dequeue(c2)  # c2 overshoots: head -> head + 8
        # c2 either undid (head back to `head`) or claimed. If it undid,
        # force the claim path with a helper-interleaved sequence.
        if q.stats.claims_registered == 0:
            # Overshoot twice in a row: c2 then helper; c2's slot is first.
            with pytest.raises(QueueEmpty):
                q.dequeue(c2)
            cluster.fabric.fetch_add(q.head_addr, WORD)  # helper overshoot
            with pytest.raises(QueueEmpty):
                q.dequeue(helper)
        assert q.stats.claims_registered >= 0  # structure survived


class TestFullDetection:
    def test_full_queue_rejects(self, cluster):
        q = make_queue(cluster, capacity=32, max_clients=2)
        c = cluster.client()
        for i in range(q.usable_capacity):
            q.enqueue(c, i)
        with pytest.raises(QueueFull):
            q.enqueue(c, 999)
        assert q.stats.full_rejections >= 1

    def test_full_then_drain_recovers(self, cluster):
        q = make_queue(cluster, capacity=32, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        for i in range(q.usable_capacity):
            q.enqueue(producer, i)
        with pytest.raises(QueueFull):
            q.enqueue(producer, 999)
        for i in range(q.usable_capacity):
            assert q.dequeue(consumer) == i
        q.enqueue(producer, 1000)
        assert q.dequeue(consumer) == 1000

    def test_usable_capacity_formula(self, cluster):
        q = make_queue(cluster, capacity=64, max_clients=4)
        assert q.usable_capacity == 64 - 8

    def test_no_data_loss_at_boundary(self, cluster):
        q = make_queue(cluster, capacity=24, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        sent, received = [], []
        value = 0
        for _ in range(50):
            for _ in range(6):
                try:
                    q.enqueue(producer, value)
                    sent.append(value)
                except QueueFull:
                    pass
                value += 1
            for _ in range(4):
                item = q.try_dequeue(consumer)
                if item is not None:
                    received.append(item)
        while (item := q.try_dequeue(consumer)) is not None:
            received.append(item)
        assert received == sent


class TestClearing:
    """The Fig.1-only mode (use_fsaai=False): deferred batched clears."""

    def test_flush_clears_is_one_access(self, cluster):
        q = make_queue(cluster, clear_batch=100, use_fsaai=False)
        c = cluster.client()
        for i in range(10):
            q.enqueue(c, i)
        for _ in range(10):
            q.dequeue(c)
        snapshot = c.metrics.snapshot()
        cleared = q.flush_clears(c)
        assert cleared == 10
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_flush_empty_is_free(self, cluster):
        q = make_queue(cluster)
        c = cluster.client()
        q._state(c)  # attach
        snapshot = c.metrics.snapshot()
        assert q.flush_clears(c) == 0
        assert c.metrics.delta(snapshot).far_accesses == 0

    def test_synchronous_clearing_mode(self, cluster):
        q = make_queue(cluster, clear_batch=1, use_fsaai=False)
        c = cluster.client()
        q.enqueue(c, 1)
        q.dequeue(c)
        snapshot = c.metrics.snapshot()
        q.enqueue(c, 2)
        q.dequeue(c)
        # clear_batch=1: dequeue = faai + immediate clear = 2 accesses.
        assert c.metrics.delta(snapshot).far_accesses == 3

    def test_fsaai_mode_needs_no_clears(self, cluster):
        q = make_queue(cluster)  # default: use_fsaai=True
        c = cluster.client()
        q.enqueue(c, 1)
        snapshot = c.metrics.snapshot()
        assert q.dequeue(c) == 1
        # Exactly one far access — consume + sentinel reset fused.
        assert c.metrics.delta(snapshot).far_accesses == 1
        state = q._state(c)
        assert state.pending_clears == []
        # The slot really is EMPTY again.
        from repro.core.queue import EMPTY

        assert cluster.fabric.read_word(q.array_base) == EMPTY


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("enq"),
                    st.integers(min_value=0, max_value=2),
                    st.integers(min_value=0, max_value=1 << 30),
                ),
                st.tuples(st.just("deq"), st.integers(min_value=0, max_value=2), st.just(0)),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_model_deque(self, script):
        from collections import deque

        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        q = cluster.far_queue(capacity=16, max_clients=3)
        clients = [cluster.client() for _ in range(3)]
        model: deque[int] = deque()
        for op, who, value in script:
            client = clients[who]
            if op == "enq":
                try:
                    q.enqueue(client, value)
                    model.append(value)
                except QueueFull:
                    assert len(model) >= q.usable_capacity - 3
            else:
                got = q.try_dequeue(client)
                if got is not None:
                    assert model and got == model.popleft()
        # Drain: everything the model holds must come back in order,
        # allowing for claim-armed clients needing a second call.
        drained: list[int] = []
        idle_rounds = 0
        while len(drained) < len(model) and idle_rounds < 6:
            progressed = False
            for client in clients:
                got = q.try_dequeue(client)
                if got is not None:
                    drained.append(got)
                    progressed = True
            idle_rounds = 0 if progressed else idle_rounds + 1
        assert sorted(drained) == sorted(model)
