"""Property-based tests: refreshable vectors against a model array.

The invariant of section 5.4: a reader's cache may be stale between
refreshes, but after ``refresh`` every element equals the writer's latest
value — regardless of the interleaving of writes, refreshes, and dynamic
policy switches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.notify import DeliveryPolicy

NODE_SIZE = 8 << 20
LENGTH = 64

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"),
            st.integers(min_value=0, max_value=LENGTH - 1),
            st.integers(min_value=0, max_value=1 << 30),
        ),
        st.tuples(st.just("refresh"), st.just(0), st.just(0)),
        st.tuples(st.just("batch"), st.integers(min_value=1, max_value=8), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class TestRefreshableInvariant:
    @settings(max_examples=40, deadline=None)
    @given(ops, st.sampled_from([4, 16, 64]), st.booleans())
    def test_refresh_restores_coherence(self, script, group_size, element_versions):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        vector = cluster.refreshable_vector(
            LENGTH,
            group_size=group_size,
            element_versions=element_versions,
            quiet_refreshes=2,
        )
        writer, reader = cluster.client(), cluster.client()
        vector.refresh(reader)  # attach
        model = np.zeros(LENGTH, dtype=np.uint64)
        rng = np.random.default_rng(0)
        for op, a, b in script:
            if op == "set":
                vector.set(writer, a, b)
                model[a] = b
            elif op == "refresh":
                vector.refresh(reader)
            else:  # batch write of `a` random elements
                picks = rng.choice(LENGTH, size=a, replace=False)
                updates = {int(i): int(rng.integers(0, 1 << 30)) for i in picks}
                vector.set_many(writer, updates)
                for index, value in updates.items():
                    model[index] = value
        # The defining guarantee: one refresh makes the next lookups fresh.
        vector.refresh(reader)
        for i in range(LENGTH):
            assert vector.get(reader, i) == model[i], (i, vector.reader_mode(reader))

    @settings(max_examples=15, deadline=None)
    @given(ops)
    def test_coherent_even_with_lossy_notifications(self, script):
        cluster = Cluster(
            node_count=1,
            node_size=NODE_SIZE,
            delivery_policy=DeliveryPolicy(drop_probability=0.5, seed=3),
        )
        vector = cluster.refreshable_vector(LENGTH, group_size=8, quiet_refreshes=1)
        writer, reader = cluster.client(), cluster.client()
        vector.refresh(reader)
        model = np.zeros(LENGTH, dtype=np.uint64)
        for op, a, b in script:
            if op == "set":
                vector.set(writer, a, b)
                model[a] = b
            elif op == "refresh":
                vector.refresh(reader)
        # Dropped notifications may hide updates from notify-mode readers
        # until a loss warning or poll fallback; force coherence by
        # polling twice (the second refresh runs in poll mode if a loss
        # warning flipped the policy).
        vector.refresh(reader)
        vector.refresh(reader)
        if vector.reader_mode(reader) == "notify":
            # No loss warning arrived: any drop is invisible only if the
            # notification for it was delivered or nothing changed.
            vector._leave_notify_mode(vector._reader(reader))
            vector.refresh(reader)
        for i in range(LENGTH):
            assert vector.get(reader, i) == model[i]
