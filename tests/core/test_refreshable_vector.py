"""Unit tests for refreshable vectors (section 5.4)."""

import pytest

from repro import Cluster
from repro.fabric.errors import AddressError
from repro.notify import DeliveryPolicy

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


def make_vector(cluster, length=256, group_size=32, **kwargs):
    return cluster.refreshable_vector(length, group_size=group_size, **kwargs)


class TestBasics:
    def test_fresh_reader_sees_writes(self, cluster):
        v = make_vector(cluster)
        writer, reader = cluster.client(), cluster.client()
        v.set(writer, 10, 99)
        v.refresh(reader)
        assert v.get(reader, 10) == 99

    def test_get_fresh(self, cluster):
        v = make_vector(cluster)
        writer, reader = cluster.client(), cluster.client()
        v.set(writer, 0, 5)
        assert v.get_fresh(reader, 0) == 5

    def test_stale_reads_allowed(self, cluster):
        # The defining property: reads may be stale until refresh.
        v = make_vector(cluster)
        writer, reader = cluster.client(), cluster.client()
        v.refresh(reader)  # attach
        v.set(writer, 3, 7)
        assert v.get(reader, 3) == 0  # stale, and that is fine
        v.refresh(reader)
        assert v.get(reader, 3) == 7

    def test_bounds(self, cluster):
        v = make_vector(cluster, length=8)
        c = cluster.client()
        with pytest.raises(AddressError):
            v.set(c, 8, 1)
        with pytest.raises(AddressError):
            v.get(c, -1)

    def test_snapshot(self, cluster):
        v = make_vector(cluster, length=16, group_size=4)
        writer, reader = cluster.client(), cluster.client()
        for i in range(16):
            v.set(writer, i, i)
        v.refresh(reader)
        assert v.snapshot(reader).tolist() == list(range(16))

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            make_vector(cluster, length=0)


class TestWriterCosts:
    def test_set_is_one_far_access(self, cluster):
        v = make_vector(cluster)
        writer = cluster.client()
        snapshot = writer.metrics.snapshot()
        v.set(writer, 5, 1)
        assert writer.metrics.delta(snapshot).far_accesses == 1

    def test_set_many_is_one_far_access(self, cluster):
        v = make_vector(cluster)
        writer = cluster.client()
        snapshot = writer.metrics.snapshot()
        v.set_many(writer, {1: 10, 50: 20, 200: 30})
        assert writer.metrics.delta(snapshot).far_accesses == 1

    def test_multi_writer_path(self, cluster):
        v = make_vector(cluster)
        w1, w2 = cluster.client(), cluster.client()
        v.set_multi_writer(w1, 0, 5)
        v.set_multi_writer(w2, 0, 7)
        reader = cluster.client()
        v.refresh(reader)
        assert v.get(reader, 0) == 7


class TestRefreshCosts:
    def test_refresh_cost_independent_of_vector_size(self, cluster):
        big = make_vector(cluster, length=4096, group_size=64)
        writer, reader = cluster.client(), cluster.client()
        big.refresh(reader)  # attach
        writer_updates = {5: 1}
        big.set_many(writer, writer_updates)
        snapshot = reader.metrics.snapshot()
        report = big.refresh(reader)
        delta = reader.metrics.delta(snapshot)
        assert delta.far_accesses == 2  # version block + one group gather
        assert report.groups_refreshed == 1
        # Bytes scale with one group, not the whole vector.
        assert delta.bytes_read < 4096 * 8 / 4

    def test_clean_refresh_is_one_access(self, cluster):
        v = make_vector(cluster)
        reader = cluster.client()
        v.refresh(reader)
        snapshot = reader.metrics.snapshot()
        report = v.refresh(reader)
        assert reader.metrics.delta(snapshot).far_accesses == 1
        assert report.groups_refreshed == 0

    def test_refresh_pulls_only_changed_groups(self, cluster):
        v = make_vector(cluster, length=256, group_size=32)
        writer, reader = cluster.client(), cluster.client()
        v.refresh(reader)
        v.set(writer, 0, 1)     # group 0
        v.set(writer, 100, 2)   # group 3
        report = v.refresh(reader)
        assert report.groups_refreshed == 2
        assert report.elements_refreshed == 64


class TestDynamicPolicy:
    def test_quiet_reader_switches_to_notifications(self, cluster):
        v = make_vector(cluster, quiet_refreshes=3)
        reader = cluster.client()
        for _ in range(4):
            v.refresh(reader)
        assert v.reader_mode(reader) == "notify"

    def test_notify_mode_refresh_is_free_when_quiet(self, cluster):
        v = make_vector(cluster, quiet_refreshes=2)
        reader = cluster.client()
        for _ in range(3):
            v.refresh(reader)
        assert v.reader_mode(reader) == "notify"
        snapshot = reader.metrics.snapshot()
        report = v.refresh(reader)
        assert reader.metrics.delta(snapshot).far_accesses == 0
        assert report.mode == "notify"

    def test_notify_mode_sees_changes(self, cluster):
        v = make_vector(cluster, quiet_refreshes=2)
        writer, reader = cluster.client(), cluster.client()
        for _ in range(3):
            v.refresh(reader)
        v.set(writer, 42, 7)
        report = v.refresh(reader)
        assert report.notifications_consumed >= 1
        assert v.get(reader, 42) == 7

    def test_busy_reader_switches_back_to_polling(self, cluster):
        v = make_vector(cluster, quiet_refreshes=2, busy_notifications=4)
        writer, reader = cluster.client(), cluster.client()
        for _ in range(3):
            v.refresh(reader)
        assert v.reader_mode(reader) == "notify"
        for i in range(20):  # update storm
            v.set(writer, i, i)
        v.refresh(reader)
        assert v.reader_mode(reader) == "poll"
        assert v.reader_mode_switches(reader) == 2

    def test_loss_warning_forces_full_poll(self, cluster):
        cluster_lossy = Cluster(
            node_count=1,
            node_size=NODE_SIZE,
            delivery_policy=DeliveryPolicy(bucket_capacity=1, bucket_refill=1),
        )
        v = cluster_lossy.refreshable_vector(128, group_size=16, quiet_refreshes=1)
        writer, reader = cluster_lossy.client(), cluster_lossy.client()
        v.refresh(reader)
        v.refresh(reader)
        assert v.reader_mode(reader) == "notify"
        # Burst: bucket capacity 1 drops most, then warns after a tick.
        for i in range(10):
            v.set(writer, i, i + 1)
        cluster_lossy.notifications.tick()
        v.set(writer, 100, 5)
        report = v.refresh(reader)
        assert report.loss_warning
        assert report.switched_mode == "poll"
        # Despite the loss, the fallback poll recovered every update.
        for i in range(10):
            assert v.get(reader, i) == i + 1
        assert v.get(reader, 100) == 5


class TestElementVersions:
    def test_element_mode_refreshes_exact_entries(self, cluster):
        v = make_vector(cluster, length=128, element_versions=True)
        writer, reader = cluster.client(), cluster.client()
        v.refresh(reader)
        v.set(writer, 10, 1)
        v.set(writer, 90, 2)
        report = v.refresh(reader)
        assert report.elements_refreshed == 2  # not whole groups
        assert v.get(reader, 10) == 1
        assert v.get(reader, 90) == 2

    def test_element_mode_notifications(self, cluster):
        v = make_vector(cluster, length=64, element_versions=True, quiet_refreshes=1)
        writer, reader = cluster.client(), cluster.client()
        v.refresh(reader)
        v.refresh(reader)
        assert v.reader_mode(reader) == "notify"
        v.set(writer, 33, 9)
        report = v.refresh(reader)
        assert report.elements_refreshed == 1
        assert v.get(reader, 33) == 9
