"""Property-based tests: the registry against a model dict.

Open addressing with tombstones is classically easy to get wrong (probe
chains broken by deletion, slot reuse aliasing); hypothesis drives random
register/unregister/lookup sequences and requires dict semantics
throughout, plus structural invariants at the end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.core.registry import RegistryError

NODE_SIZE = 8 << 20

# A small name pool forces collisions and slot reuse.
names = st.sampled_from([f"svc-{i}" for i in range(12)])

scripts = st.lists(
    st.one_of(
        st.tuples(st.just("register"), names, st.binary(min_size=0, max_size=16)),
        st.tuples(st.just("unregister"), names, st.just(b"")),
        st.tuples(st.just("lookup"), names, st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


class TestRegistryModel:
    @settings(max_examples=40, deadline=None)
    @given(scripts)
    def test_matches_model_dict(self, script):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        registry = cluster.registry(capacity=16)
        client = cluster.client()
        model: dict[str, bytes] = {}
        for op, name, payload in script:
            if op == "register":
                if name in model:
                    with pytest.raises(RegistryError):
                        registry.register(client, name, 1, payload)
                else:
                    registry.register(client, name, 1, payload)
                    model[name] = payload
            elif op == "unregister":
                assert registry.unregister(client, name) == (name in model)
                model.pop(name, None)
            else:
                found = registry.lookup(client, name)
                if name in model:
                    assert found == (1, model[name])
                else:
                    assert found is None
        # Final coherence: every model entry resolvable, nothing extra.
        for name, payload in model.items():
            assert registry.lookup(client, name) == (1, payload)
        for name in (f"svc-{i}" for i in range(12)):
            if name not in model:
                assert registry.lookup(client, name) is None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=16))
    def test_fill_drain_refill(self, count):
        # Registering, draining, and refilling must always succeed within
        # capacity — tombstones must not permanently consume slots.
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        registry = cluster.registry(capacity=16)
        client = cluster.client()
        for round_ in range(3):
            chosen = [f"n{round_}-{i}" for i in range(count)]
            for name in chosen:
                registry.register(client, name, 1, name.encode())
            for name in chosen:
                assert registry.lookup(client, name) == (1, name.encode())
            for name in chosen:
                assert registry.unregister(client, name)
