"""Unit tests for the far reader-writer lock and counting semaphore."""

import pytest

from repro import Cluster
from repro.core.mutex import MutexError

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestRWLock:
    def test_many_readers(self, cluster):
        lock = cluster.far_rwlock()
        readers = [cluster.client() for _ in range(4)]
        for r in readers:
            assert lock.try_acquire_read(r)
        assert lock.readers(readers[0]) == 4

    def test_writer_excludes_readers(self, cluster):
        lock = cluster.far_rwlock()
        writer, reader = cluster.client(), cluster.client()
        assert lock.try_acquire_write(writer)
        assert not lock.try_acquire_read(reader)
        lock.release_write(writer)
        assert lock.try_acquire_read(reader)

    def test_readers_exclude_writer(self, cluster):
        lock = cluster.far_rwlock()
        reader, writer = cluster.client(), cluster.client()
        lock.try_acquire_read(reader)
        assert not lock.try_acquire_write(writer)
        lock.release_read(reader)
        assert lock.try_acquire_write(writer)

    def test_writer_excludes_writer(self, cluster):
        lock = cluster.far_rwlock()
        a, b = cluster.client(), cluster.client()
        assert lock.try_acquire_write(a)
        assert not lock.try_acquire_write(b)

    def test_reader_backout_leaves_clean_state(self, cluster):
        lock = cluster.far_rwlock()
        writer, reader = cluster.client(), cluster.client()
        lock.try_acquire_write(writer)
        lock.try_acquire_read(reader)  # blocked + backed out
        lock.release_write(writer)
        assert lock.readers(reader) == 0
        assert not lock.writer_held(reader)

    def test_notifye_wakeup_on_full_release(self, cluster):
        lock = cluster.far_rwlock()
        r1, r2, writer = cluster.client(), cluster.client(), cluster.client()
        lock.try_acquire_read(r1)
        lock.try_acquire_read(r2)
        assert not lock.try_acquire_write(writer)
        sub = lock.subscribe_free(writer)
        lock.release_read(r1)
        assert writer.pending_notifications() == 0  # still one reader
        lock.release_read(r2)
        assert writer.pending_notifications() == 1  # state hit 0
        writer.poll_notifications()
        assert lock.try_acquire_write(writer)
        cluster.notifications.unsubscribe(sub)

    def test_misuse_raises(self, cluster):
        lock = cluster.far_rwlock()
        c = cluster.client()
        with pytest.raises(MutexError):
            lock.release_read(c)
        with pytest.raises(MutexError):
            lock.release_write(c)

    def test_read_acquire_is_one_far_access(self, cluster):
        lock = cluster.far_rwlock()
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        lock.try_acquire_read(c)
        assert c.metrics.delta(snapshot).far_accesses == 1


class TestSemaphore:
    def test_permits_flow(self, cluster):
        sem = cluster.far_semaphore(2)
        a, b, c = cluster.client(), cluster.client(), cluster.client()
        assert sem.try_acquire(a)
        assert sem.try_acquire(b)
        assert not sem.try_acquire(c)
        sem.release(a)
        assert sem.try_acquire(c)

    def test_available(self, cluster):
        sem = cluster.far_semaphore(3)
        c = cluster.client()
        assert sem.available(c) == 3
        sem.try_acquire(c)
        assert sem.available(c) == 2

    def test_over_release_rejected(self, cluster):
        sem = cluster.far_semaphore(1)
        c = cluster.client()
        with pytest.raises(MutexError):
            sem.release(c)
        assert sem.available(c) == 1  # the faulty bump was rolled back

    def test_notification_retry(self, cluster):
        sem = cluster.far_semaphore(1)
        holder, waiter = cluster.client(), cluster.client()
        assert sem.acquire_or_wait(holder) is None
        sub = sem.acquire_or_wait(waiter)
        assert sub is not None
        sem.release(holder)
        assert waiter.pending_notifications() >= 1
        waiter.poll_notifications()
        assert sem.retry(waiter, sub)

    def test_acquire_is_one_far_access(self, cluster):
        sem = cluster.far_semaphore(4)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        sem.try_acquire(c)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_permits_validated(self, cluster):
        with pytest.raises(ValueError):
            cluster.far_semaphore(0)
