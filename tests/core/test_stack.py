"""Unit + property tests for the far stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.alloc import EpochReclaimer
from repro.core.stack import FarStack

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def stack(cluster):
    return cluster.far_stack()


class TestOperations:
    def test_lifo_order(self, cluster, stack):
        c = cluster.client()
        for i in range(5):
            stack.push(c, i)
        assert [stack.pop(c) for _ in range(5)] == [4, 3, 2, 1, 0]

    def test_pop_empty_returns_none(self, cluster, stack):
        assert stack.pop(cluster.client()) is None
        assert stack.stats.empty_pops == 1

    def test_peek(self, cluster, stack):
        c = cluster.client()
        assert stack.peek(c) is None
        stack.push(c, 7)
        assert stack.peek(c) == 7
        assert len(stack) == 1

    def test_shared_between_clients(self, cluster, stack):
        a, b = cluster.client(), cluster.client()
        stack.push(a, 1)
        stack.push(b, 2)
        assert stack.pop(a) == 2
        assert stack.pop(b) == 1

    def test_push_cost(self, cluster, stack):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        stack.push(c, 1)
        # top read + node write + CAS (the documented 3; load0 cannot help
        # a *linking* operation).
        assert c.metrics.delta(snapshot).far_accesses == 3

    def test_pop_cost_is_two(self, cluster, stack):
        c = cluster.client()
        stack.push(c, 1)
        snapshot = c.metrics.snapshot()
        stack.pop(c)
        # load0 (node fetch through the top pointer) + CAS.
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_reclaimer_frees_popped_nodes(self, cluster):
        reclaimer = EpochReclaimer(cluster.allocator)
        stack = FarStack.create(cluster.allocator, reclaimer=reclaimer)
        c = cluster.client()
        pid = reclaimer.register()
        for i in range(10):
            stack.push(c, i)
        for _ in range(10):
            stack.pop(c)
        reclaimer.quiesce(pid)
        reclaimer.quiesce(pid)
        assert reclaimer.stats.reclaimed == 10


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(min_value=0, max_value=1 << 30)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_matches_model_list(self, script):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        stack = cluster.far_stack()
        client = cluster.client()
        model: list[int] = []
        for op, value in script:
            if op == "push":
                stack.push(client, value)
                model.append(value)
            else:
                got = stack.pop(client)
                expected = model.pop() if model else None
                assert got == expected
        assert len(stack) == len(model)
