"""Unit tests for far vectors and their notification-maintained caches."""

import numpy as np
import pytest

from repro import Cluster
from repro.core.vector import CachedFarVector, FarVector
from repro.fabric.errors import AddressError
from repro.fabric.wire import WORD

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def client(cluster):
    return cluster.client()


@pytest.fixture
def vector(cluster):
    return cluster.far_vector(32)


class TestFarVector:
    def test_starts_zeroed(self, vector, client):
        assert vector.get(client, 0) == 0
        assert vector.get(client, 31) == 0

    def test_set_get(self, vector, client):
        vector.set(client, 5, 99)
        assert vector.get(client, 5) == 99

    def test_element_ops_are_one_far_access(self, vector, client):
        snapshot = client.metrics.snapshot()
        vector.set(client, 1, 10)
        vector.get(client, 1)
        vector.add(client, 1, 5)
        assert client.metrics.delta(snapshot).far_accesses == 3

    def test_add_returns_old(self, vector, client):
        vector.set(client, 2, 7)
        assert vector.add(client, 2, 3) == 7
        assert vector.get(client, 2) == 10

    def test_index_bounds(self, vector, client):
        with pytest.raises(AddressError):
            vector.get(client, 32)
        with pytest.raises(AddressError):
            vector.set(client, -1, 0)

    def test_read_all(self, vector, client):
        for i in range(32):
            vector.set(client, i, i * i)
        values = vector.read_all(client)
        assert values.tolist() == [i * i for i in range(32)]

    def test_read_all_with_cached_base_is_one_access(self, vector, client):
        base = vector.base(client)
        snapshot = client.metrics.snapshot()
        vector.read_all(client, base=base)
        assert client.metrics.delta(snapshot).far_accesses == 1

    def test_read_range(self, vector, client):
        for i in range(32):
            vector.set(client, i, i)
        assert vector.read_range(client, 10, 5).tolist() == [10, 11, 12, 13, 14]

    def test_write_all(self, vector, client):
        vector.write_all(client, np.arange(32, dtype=np.uint64))
        assert vector.get(client, 20) == 20

    def test_write_all_shape_check(self, vector, client):
        with pytest.raises(ValueError):
            vector.write_all(client, [1, 2, 3])

    def test_length_validation(self, cluster):
        with pytest.raises(ValueError):
            FarVector.create(cluster.allocator, 0)


class TestBaseSwitch:
    def test_swap_base_redirects_all_access(self, cluster, client, vector):
        vector.set(client, 0, 1)
        new_storage = cluster.allocator.alloc(32 * WORD)
        cluster.fabric.write(new_storage, b"\x00" * 32 * WORD)
        old = vector.swap_base(client, new_storage)
        assert vector.get(client, 0) == 0  # new storage is fresh
        vector.set(client, 0, 42)
        assert cluster.fabric.read_word(new_storage) == 42
        assert cluster.fabric.read_word(old) == 1  # old region intact

    def test_base_subscription_carries_new_base(self, cluster, client, vector):
        watcher = cluster.client()
        vector.subscribe_base(cluster.notifications, watcher)
        new_storage = cluster.allocator.alloc(32 * WORD)
        vector.swap_base(client, new_storage)
        ns = watcher.poll_notifications()
        assert len(ns) == 1
        from repro.fabric.wire import decode_u64

        assert decode_u64(ns[0].data) == new_storage


class TestSubscriptions:
    def test_subscribe_range_fires_on_element_write(self, cluster, client, vector):
        watcher = cluster.client()
        base = vector.base(watcher)
        vector.subscribe_range(cluster.notifications, watcher, base, 4, 4)
        vector.set(client, 5, 1)  # inside
        vector.set(client, 20, 1)  # outside
        assert watcher.pending_notifications() == 1

    def test_subscribe_value(self, cluster, client, vector):
        watcher = cluster.client()
        base = vector.base(watcher)
        vector.subscribe_value(cluster.notifications, watcher, base, 3, 7)
        vector.set(client, 3, 5)
        assert watcher.pending_notifications() == 0
        vector.set(client, 3, 7)
        assert watcher.pending_notifications() == 1

    def test_subscribe_range_bounds(self, cluster, client, vector):
        base = vector.base(client)
        with pytest.raises(AddressError):
            vector.subscribe_range(cluster.notifications, client, base, 30, 5)

    def test_large_vector_subscription_splits_pages(self, cluster):
        vector = cluster.far_vector(2048)  # 16 KiB: 4+ pages
        watcher = cluster.client()
        base = vector.base(watcher)
        subs = vector.subscribe_range(cluster.notifications, watcher, base, 0, 2048)
        assert len(subs) >= 4


class TestCachedFarVector:
    def test_reads_hit_cache(self, cluster, vector):
        writer = cluster.client()
        vector.set(writer, 3, 9)
        reader = cluster.client()
        cached = CachedFarVector.attach(vector, reader, cluster.notifications)
        snapshot = reader.metrics.snapshot()
        assert cached.get(3) == 9
        assert reader.metrics.delta(snapshot).far_accesses == 0

    def test_notification_updates_cache(self, cluster, vector):
        writer = cluster.client()
        reader = cluster.client()
        cached = CachedFarVector.attach(vector, reader, cluster.notifications)
        vector.set(writer, 7, 123)
        snapshot = reader.metrics.snapshot()
        assert cached.get(7) == 123  # updated via notify0d payload
        assert reader.metrics.delta(snapshot).far_accesses == 0
        assert cached.hit_fraction() == 1.0

    def test_close_stops_updates(self, cluster, vector):
        writer = cluster.client()
        reader = cluster.client()
        cached = CachedFarVector.attach(vector, reader, cluster.notifications)
        cached.close()
        vector.set(writer, 1, 5)
        cached.pump()
        # No subscription: the cache serves the (stale) old value.
        assert cached.get(1) == 0
