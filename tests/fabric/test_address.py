"""Unit + property tests for the address space and placements."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.address import (
    PAGE_SIZE,
    InterleavedPlacement,
    RangePlacement,
    page_of,
    same_page,
)
from repro.fabric.errors import AddressError

NODE_SIZE = 1 << 20


class TestRangePlacement:
    def setup_method(self):
        self.placement = RangePlacement(node_count=4, node_size=NODE_SIZE)

    def test_total_size(self):
        assert self.placement.total_size == 4 * NODE_SIZE

    def test_locate_first_node(self):
        loc = self.placement.locate(100)
        assert (loc.node, loc.offset) == (0, 100)

    def test_locate_boundary(self):
        loc = self.placement.locate(NODE_SIZE)
        assert (loc.node, loc.offset) == (1, 0)

    def test_globalize_inverse(self):
        addr = 3 * NODE_SIZE + 17
        loc = self.placement.locate(addr)
        assert self.placement.globalize(loc.node, loc.offset) == addr

    def test_contiguous_extent(self):
        assert self.placement.contiguous_extent(0) == NODE_SIZE
        assert self.placement.contiguous_extent(NODE_SIZE - 8) == 8

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            self.placement.locate(4 * NODE_SIZE)
        with pytest.raises(AddressError):
            self.placement.check(-1, 8)

    def test_split_single_segment(self):
        segments = self.placement.split(10, 100)
        assert len(segments) == 1
        assert segments[0][1] == 100

    def test_split_across_nodes(self):
        segments = self.placement.split(NODE_SIZE - 10, 30)
        assert len(segments) == 2
        assert segments[0][1] == 10
        assert segments[1][1] == 20
        assert segments[0][0].node == 0
        assert segments[1][0].node == 1

    def test_globalize_validates(self):
        with pytest.raises(AddressError):
            self.placement.globalize(9, 0)
        with pytest.raises(AddressError):
            self.placement.globalize(0, NODE_SIZE)

    @given(st.integers(min_value=0, max_value=4 * NODE_SIZE - 1))
    def test_locate_globalize_roundtrip(self, addr):
        loc = self.placement.locate(addr)
        assert self.placement.globalize(loc.node, loc.offset) == addr


class TestInterleavedPlacement:
    def setup_method(self):
        self.placement = InterleavedPlacement(
            node_count=4, node_size=NODE_SIZE, granularity=4096
        )

    def test_round_robin_stripes(self):
        assert self.placement.locate(0).node == 0
        assert self.placement.locate(4096).node == 1
        assert self.placement.locate(2 * 4096).node == 2
        assert self.placement.locate(4 * 4096).node == 0

    def test_within_stripe_offset(self):
        loc = self.placement.locate(4096 + 100)
        assert loc.node == 1
        assert loc.offset == 100

    def test_second_lap_offsets(self):
        loc = self.placement.locate(4 * 4096 + 7)
        assert loc.node == 0
        assert loc.offset == 4096 + 7

    def test_contiguous_extent_is_stripe_remainder(self):
        assert self.placement.contiguous_extent(0) == 4096
        assert self.placement.contiguous_extent(4090) == 6

    def test_split_strides_nodes(self):
        segments = self.placement.split(0, 3 * 4096)
        assert [loc.node for loc, _ in segments] == [0, 1, 2]

    def test_granularity_must_divide_node_size(self):
        with pytest.raises(ValueError):
            InterleavedPlacement(node_count=2, node_size=NODE_SIZE, granularity=4096 + 8)

    def test_granularity_word_multiple(self):
        with pytest.raises(ValueError):
            InterleavedPlacement(node_count=2, node_size=NODE_SIZE, granularity=13)

    @given(st.integers(min_value=0, max_value=4 * NODE_SIZE - 1))
    def test_locate_globalize_roundtrip(self, addr):
        loc = self.placement.locate(addr)
        assert self.placement.globalize(loc.node, loc.offset) == addr

    @given(
        st.integers(min_value=0, max_value=4 * NODE_SIZE - 10_000),
        st.integers(min_value=1, max_value=9_999),
    )
    def test_split_covers_range_exactly(self, addr, length):
        segments = self.placement.split(addr, length)
        assert sum(seg for _, seg in segments) == length
        # Each segment stays within one node's contiguous extent.
        cursor = addr
        for loc, seg in segments:
            assert self.placement.locate(cursor) == loc
            assert seg <= self.placement.contiguous_extent(cursor)
            cursor += seg


class TestValidation:
    def test_node_count_positive(self):
        with pytest.raises(ValueError):
            RangePlacement(node_count=0, node_size=NODE_SIZE)

    def test_node_size_page_multiple(self):
        with pytest.raises(ValueError):
            RangePlacement(node_count=1, node_size=100)

    def test_negative_length_check(self):
        placement = RangePlacement(node_count=1, node_size=NODE_SIZE)
        with pytest.raises(AddressError):
            placement.check(0, -1)


class TestPages:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_same_page(self):
        assert same_page(0, PAGE_SIZE)
        assert not same_page(PAGE_SIZE - 8, 16)
        assert same_page(PAGE_SIZE - 8, 8)
        assert same_page(12345, 0)
