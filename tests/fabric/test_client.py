"""Unit tests for the client NIC: accounting, batching, fences, and the
ERROR-policy indirection completion."""

import pytest

from repro import Cluster
from repro.fabric import IndirectionPolicy
from repro.fabric.errors import RemoteIndirectionError
from repro.fabric.wire import WORD, encode_u64

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


@pytest.fixture
def client(cluster):
    return cluster.client()


class TestAccounting:
    def test_every_base_op_is_one_far_access(self, cluster, client):
        a = cluster.allocator.alloc_words(4)
        client.write_u64(a, 1)
        client.read_u64(a)
        client.cas(a, 1, 2)
        client.faa(a, 1)
        client.swap(a, 5)
        client.read(a, 16)
        client.write(a, b"\x00" * 16)
        assert client.metrics.far_accesses == 7
        assert client.metrics.round_trips == 7

    def test_bytes_accounting(self, cluster, client):
        a = cluster.allocator.alloc(128)
        client.write(a, b"x" * 100)
        client.read(a, 30)
        assert client.metrics.bytes_written == 100
        assert client.metrics.bytes_read == 30

    def test_atomic_counter(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        client.faa(a, 1)
        client.cas(a, 0, 1)
        assert client.metrics.atomic_ops == 2

    def test_time_advances_per_op(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        model = client.cost_model
        client.read_u64(a)
        assert client.clock.now_ns == model.far_ns
        client.read_u64(a)
        assert client.clock.now_ns == 2 * model.far_ns

    def test_touch_local_is_cheap(self, cluster, client):
        client.touch_local(10)
        assert client.metrics.near_accesses == 10
        assert client.metrics.far_accesses == 0
        assert client.clock.now_ns == 10 * client.cost_model.near_ns

    def test_scatter_gather_is_one_far_access(self, cluster, client):
        a = cluster.allocator.alloc(64)
        client.wgather(a, [b"ab", b"cd"])
        client.rgather([(a, 2), (a + 2, 2)])
        client.rscatter(a, [2, 2])
        client.wscatter([(a, 2)], b"zz")
        assert client.metrics.far_accesses == 4

    def test_charge_far_access(self, client):
        client.charge_far_access(nbytes_written=24)
        assert client.metrics.far_accesses == 1
        assert client.metrics.bytes_written == 24


class TestBatching:
    def test_batch_overlaps_latency(self, cluster, client):
        a = cluster.allocator.alloc_words(8)
        model = client.cost_model
        with client.batch():
            for i in range(4):
                client.write_u64(a + i * WORD, i)
        # 4 overlapped ops: max latency + 3 issue slots, not 4 full RTTs.
        expected = model.far_ns + 3 * model.issue_ns
        assert client.clock.now_ns == pytest.approx(expected)
        assert client.metrics.far_accesses == 4  # work is still counted

    def test_fence_inside_batch_orders(self, cluster, client):
        a = cluster.allocator.alloc_words(2)
        model = client.cost_model
        with client.batch():
            client.write_u64(a, 1)
            client.fence()
            client.write_u64(a + WORD, 2)
        # Two ordered groups of one op each.
        assert client.clock.now_ns == pytest.approx(2 * model.far_ns)

    def test_nested_batch_flattens(self, cluster, client):
        a = cluster.allocator.alloc_words(2)
        with client.batch():
            client.write_u64(a, 1)
            with client.batch():
                client.write_u64(a + WORD, 2)
        assert client.metrics.far_accesses == 2

    def test_empty_batch_costs_nothing(self, client):
        with client.batch():
            pass
        assert client.clock.now_ns == 0

    def test_fence_counted(self, client):
        client.fence()
        assert client.metrics.custom["fences"] == 1


class TestIndirectAccounting:
    def test_forwarded_indirection_counts_hops(self, cluster):
        client = cluster.client()
        pointer = cluster.allocator.alloc_words(1, hint=None)
        # Place the target on the other node.
        from repro.alloc import on_node

        target = cluster.allocator.alloc_words(1, on_node(1))
        assert cluster.fabric.node_of(target) == 1
        client.write_u64(pointer, target)
        client.write_u64(target, 55)
        snapshot = client.metrics.snapshot()
        assert client.load0_u64(pointer) == 55
        delta = client.metrics.delta(snapshot)
        assert delta.far_accesses == 1
        assert delta.indirection_forwards == 1
        assert delta.network_traversals == 3  # client->home->target->client

    def test_error_policy_auto_completion(self):
        cluster = Cluster(
            node_count=2,
            node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        client = cluster.client()
        from repro.alloc import on_node

        pointer = cluster.allocator.alloc_words(1, on_node(0))
        target = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(pointer, target)
        client.write_u64(target, 77)
        snapshot = client.metrics.snapshot()
        assert client.load0_u64(pointer) == 77
        delta = client.metrics.delta(snapshot)
        # Failed indirect attempt + direct completion = 2 round trips.
        assert delta.far_accesses == 2
        assert delta.round_trips == 2
        assert delta.indirection_errors == 1

    def test_error_policy_can_propagate(self):
        cluster = Cluster(
            node_count=2,
            node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        client = cluster.client()
        client.auto_complete_indirection = False
        from repro.alloc import on_node

        pointer = cluster.allocator.alloc_words(1, on_node(0))
        target = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(pointer, target)
        with pytest.raises(RemoteIndirectionError):
            client.load0(pointer, WORD)

    def test_error_completion_for_stores_and_adds(self):
        cluster = Cluster(
            node_count=2,
            node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        client = cluster.client()
        from repro.alloc import on_node

        pointer = cluster.allocator.alloc_words(1, on_node(0))
        target = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(pointer, target)
        client.store0(pointer, encode_u64(5))
        assert cluster.fabric.read_word(target) == 5
        client.add0(pointer, 3)
        assert cluster.fabric.read_word(target) == 8
        assert client.metrics.indirection_errors == 2


class TestWordConveniences:
    def test_load_store_u64_variants(self, cluster, client):
        base = cluster.allocator.alloc_words(8)
        pointer = cluster.allocator.alloc_words(1)
        client.write_u64(pointer, base)
        client.store0_u64(pointer, 9)
        assert client.load0_u64(pointer) == 9
        client.store2_u64(pointer, 2 * WORD, 11)
        assert client.load2_u64(pointer, 2 * WORD) == 11


class TestNotificationInbox:
    def test_deliver_and_poll(self, cluster):
        client = cluster.client()
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(client, a, WORD)
        other = cluster.client()
        other.write_u64(a, 1)
        other.write_u64(a, 2)
        assert client.pending_notifications() == 2
        first = client.poll_notifications(max_items=1)
        assert len(first) == 1
        rest = client.poll_notifications()
        assert len(rest) == 1
        assert client.metrics.notifications_received == 2

    def test_poll_costs_near_not_far(self, cluster):
        client = cluster.client()
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(client, a, WORD)
        far_before = client.metrics.far_accesses
        cluster.client().write_u64(a, 1)
        client.poll_notifications()
        assert client.metrics.far_accesses == far_before
        assert client.metrics.near_accesses >= 1
