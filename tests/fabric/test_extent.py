"""Tests for the extent table: translation, slots, migration mechanics."""

import pytest

from repro.fabric import (
    DEFAULT_EXTENT_SIZE,
    Fabric,
    MigrationWritePolicy,
    make_placement,
)
from repro.fabric.errors import AddressError, AllocationError, StaleEpochError
from repro.fabric.extent import ExtentTable

NODE_SIZE = 8 << 20
ES = DEFAULT_EXTENT_SIZE


class TestGeometry:
    def test_range_layout_defaults_to_256k_extents(self):
        table = ExtentTable(make_placement(2, NODE_SIZE))
        assert table.extent_size == ES
        assert table.virtual_size == 2 * NODE_SIZE
        assert table.extent_count == 2 * NODE_SIZE // ES

    def test_interleaved_layout_defaults_to_granularity(self):
        layout = make_placement(4, NODE_SIZE, interleaved=True, granularity=4096)
        table = ExtentTable(layout)
        assert table.extent_size == 4096

    def test_odd_node_size_shrinks_extent_to_gcd(self):
        table = ExtentTable(make_placement(2, ES + ES // 2))
        assert (ES + ES // 2) % table.extent_size == 0

    def test_extent_size_must_divide_node_size(self):
        with pytest.raises(ValueError):
            ExtentTable(make_placement(1, NODE_SIZE), extent_size=NODE_SIZE - 8)

    def test_extent_size_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            ExtentTable(make_placement(1, NODE_SIZE), extent_size=1000)


class TestCleanTableEquivalence:
    """A table with no remaps translates exactly like the bare layout."""

    @pytest.mark.parametrize("interleaved", [False, True])
    def test_locate_matches_layout(self, interleaved):
        layout = make_placement(4, NODE_SIZE, interleaved=interleaved)
        table = ExtentTable(layout)
        for address in (0, 7, 4096, NODE_SIZE - 1, NODE_SIZE, 3 * NODE_SIZE + 9):
            assert table.locate(address) == layout.locate(address)
            assert table.node_of(address) == layout.locate(address).node

    @pytest.mark.parametrize("interleaved", [False, True])
    def test_split_matches_layout_bit_for_bit(self, interleaved):
        layout = make_placement(4, NODE_SIZE, interleaved=interleaved)
        table = ExtentTable(layout)
        for address, length in (
            (0, 64),
            (NODE_SIZE - 100, 200),
            (4096 - 8, 16),
            (0, 3 * 4096),
            (NODE_SIZE + 5, 2 * 4096),
        ):
            assert table.split(address, length) == layout.split(address, length)

    def test_same_node_span_matches_contiguous_extent(self):
        layout = make_placement(2, NODE_SIZE)
        table = ExtentTable(layout)
        for address in (0, 1024, NODE_SIZE - 64, NODE_SIZE):
            assert table.same_node_span(address) == layout.contiguous_extent(address)

    def test_globalize_round_trips(self):
        table = ExtentTable(make_placement(2, NODE_SIZE))
        for address in (0, ES, NODE_SIZE + 17):
            location = table.locate(address)
            assert table.globalize(location.node, location.offset) == address


class TestElasticMembership:
    def test_add_node_headroom_has_all_slots_free(self):
        table = ExtentTable(make_placement(1, NODE_SIZE))
        node, grown = table.add_node()
        assert (node, grown) == (1, 0)
        assert table.free_slot_count(1) == NODE_SIZE // table.extent_size
        assert table.virtual_size == NODE_SIZE  # virtual space unchanged

    def test_add_node_grow_virtual_extends_address_space(self):
        table = ExtentTable(make_placement(1, NODE_SIZE))
        node, grown = table.add_node(grow_virtual=True)
        assert grown == NODE_SIZE
        assert table.virtual_size == 2 * NODE_SIZE
        # The new range is identity-mapped onto the new node.
        assert table.node_of(NODE_SIZE) == node
        assert table.globalize(node, 0) == NODE_SIZE

    def test_add_node_size_must_align(self):
        table = ExtentTable(make_placement(1, NODE_SIZE))
        with pytest.raises(ValueError):
            table.add_node(table.extent_size + 8)

    def test_drained_node_refuses_staging(self):
        table = ExtentTable(make_placement(1, NODE_SIZE))
        table.add_node()
        table.mark_drained(1)
        with pytest.raises(AllocationError):
            table.alloc_slot(1)


class TestMigrationStateMachine:
    def _table(self):
        table = ExtentTable(make_placement(2, NODE_SIZE))
        table.add_node()  # node 2: headroom
        return table

    def test_begin_advance_commit_remaps_and_bumps_epoch(self):
        table = self._table()
        state = table.begin_migration(0, 2)
        assert table.migrating_extents == [0]
        table.advance_migration(0, table.extent_size)
        committed = table.commit_migration(0)
        assert committed is state
        assert table.node_of(0) == 2
        assert table.epoch_of(0) == 2
        assert table.migrating_extents == []
        # The old slot is free again, the new one is occupied.
        assert table.free_slot_count(2) == NODE_SIZE // table.extent_size - 1

    def test_commit_requires_complete_copy(self):
        table = self._table()
        table.begin_migration(0, 2)
        table.advance_migration(0, 8)
        with pytest.raises(AllocationError):
            table.commit_migration(0)

    def test_double_begin_rejected(self):
        table = self._table()
        table.begin_migration(0, 2)
        with pytest.raises(AllocationError):
            table.begin_migration(0, 2)

    def test_migrate_to_current_home_rejected(self):
        table = self._table()
        with pytest.raises(AllocationError):
            table.begin_migration(0, table.node_of(0))

    def test_abort_releases_staging_slot(self):
        table = self._table()
        before = table.free_slot_count(2)
        table.begin_migration(0, 2)
        assert table.free_slot_count(2) == before - 1
        table.abort_migration(0)
        assert table.free_slot_count(2) == before
        assert table.node_of(0) == 0  # unchanged
        assert table.epoch_of(0) == 1

    def test_staging_slot_is_not_globalizable(self):
        table = self._table()
        state = table.begin_migration(0, 2)
        offset = state.dst_slot * table.extent_size
        assert table.try_globalize(2, offset) is None
        table.advance_migration(0, table.extent_size)
        table.commit_migration(0)
        assert table.try_globalize(2, offset) == 0
        # The freed source slot is unmapped now.
        assert table.try_globalize(state.src_node, state.src_slot * table.extent_size) is None

    def test_commit_resets_heat_and_forward_telemetry(self):
        table = self._table()
        table.touch(0)
        table.note_forward(0, 1)
        table.begin_migration(0, 2)
        table.advance_migration(0, table.extent_size)
        table.commit_migration(0)
        assert table.heat_of(0) == 0
        assert table.forward_sources(0) == {}


class TestWriteIntercept:
    def _mid_migration(self, policy=MigrationWritePolicy.FORWARD):
        table = ExtentTable(make_placement(2, NODE_SIZE))
        table.add_node()
        state = table.begin_migration(0, 2, policy)
        table.advance_migration(0, 4096)  # copied prefix: [0, 4096)
        return table, state

    def test_no_migrations_is_free(self):
        table = ExtentTable(make_placement(2, NODE_SIZE))
        assert table.write_intercept(0, 64) == ()

    def test_forward_mirrors_copied_prefix_only(self):
        table, state = self._mid_migration()
        mirrors = table.write_intercept(4000, 200)  # straddles the cursor
        assert mirrors == [(0, 96, 2, state.dst_slot * table.extent_size + 4000)]
        assert state.forwards == 1
        assert table.forwards_total == 1

    def test_write_past_cursor_not_mirrored(self):
        table, state = self._mid_migration()
        assert table.write_intercept(8192, 64) == []
        assert state.forwards == 0

    def test_write_outside_migrating_extent_untouched(self):
        table, _ = self._mid_migration()
        assert table.write_intercept(table.extent_size, 64) == []

    def test_fence_raises_before_any_byte(self):
        table, state = self._mid_migration(MigrationWritePolicy.FENCE)
        with pytest.raises(StaleEpochError) as exc:
            table.write_intercept(0, 8)
        assert "extent:0" in str(exc.value)
        assert state.fences == 1
        assert table.fences_total == 1


class TestReplicaAnnotations:
    def test_sibling_nodes_cover_other_replicas(self):
        table = ExtentTable(make_placement(3, NODE_SIZE))
        table.annotate_replicas("r1", 0, ES)             # node 0
        table.annotate_replicas("r1", NODE_SIZE, ES)     # node 1
        extent0 = 0
        assert table.sibling_replica_nodes(extent0) == {1}
        assert table.replica_groups_of(extent0) == frozenset({"r1"})

    def test_clear_removes_annotation(self):
        table = ExtentTable(make_placement(3, NODE_SIZE))
        table.annotate_replicas("r1", 0, ES)
        table.annotate_replicas("r1", NODE_SIZE, ES)
        table.clear_replicas("r1", NODE_SIZE, ES)
        assert table.sibling_replica_nodes(0) == set()


class TestFabricIntegration:
    def test_fabric_exposes_extent_table(self):
        fabric = Fabric(make_placement(2, NODE_SIZE))
        assert fabric.extents.layout is fabric.placement
        assert fabric.node_count == 2
        assert fabric.supports_node_hints is True

    def test_add_node_appends_memory_node(self):
        fabric = Fabric(make_placement(1, NODE_SIZE))
        node = fabric.add_node()
        assert node == 1
        assert len(fabric.nodes) == 2
        assert fabric.total_size == NODE_SIZE  # headroom only

    def test_reads_touch_extent_heat(self):
        fabric = Fabric(make_placement(1, NODE_SIZE))
        fabric.write(0, b"\x01" * 8)
        fabric.read(0, 8)
        assert fabric.extents.heat_of(0) == 2

    def test_data_survives_commit_via_raw_fabric_copy(self):
        fabric = Fabric(make_placement(1, NODE_SIZE))
        fabric.add_node()
        payload = bytes(range(256))
        fabric.write(512, payload)
        table = fabric.extents
        state = table.begin_migration(0, 1)
        es = table.extent_size
        # Simulate the coordinator's copy with the raw dataplane.
        data = fabric.read(0, es).value
        fabric.write_phys(1, state.dst_slot * es, data)
        table.advance_migration(0, es)
        table.commit_migration(0)
        assert fabric.read(512, len(payload)).value == payload
        assert fabric.node_of(512) == 1

    def test_forwarded_write_lands_on_both_homes(self):
        fabric = Fabric(make_placement(1, NODE_SIZE))
        fabric.add_node()
        table = fabric.extents
        state = table.begin_migration(0, 1)
        es = table.extent_size
        fabric.write_phys(1, state.dst_slot * es, fabric.read(0, es).value)
        table.advance_migration(0, es)  # fully copied, not yet committed
        result = fabric.write(64, b"\xAB" * 8)
        assert result.forward_hops == 1
        # The mirror made the staged copy current before commit.
        table.commit_migration(0)
        assert fabric.read(64, 8).value == b"\xAB" * 8

    def test_fenced_write_raises_and_preserves_bytes(self):
        fabric = Fabric(make_placement(1, NODE_SIZE))
        fabric.add_node()
        fabric.write(64, b"\x11" * 8)
        fabric.extents.begin_migration(0, 1, MigrationWritePolicy.FENCE)
        with pytest.raises(StaleEpochError):
            fabric.write(64, b"\x22" * 8)
        # Fence-before-byte: the old value is intact on the source.
        fabric.extents.abort_migration(0)
        assert fabric.read(64, 8).value == b"\x11" * 8
