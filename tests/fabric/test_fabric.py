"""Unit tests for fabric routing and base operations."""

import pytest

from repro.fabric import (
    Fabric,
    IndirectionPolicy,
    InterleavedPlacement,
    RangePlacement,
)
from repro.fabric.errors import RemoteIndirectionError
from repro.fabric.wire import WORD, encode_u64

NODE_SIZE = 1 << 20


@pytest.fixture
def fabric():
    return Fabric(RangePlacement(node_count=2, node_size=NODE_SIZE))


@pytest.fixture
def striped():
    return Fabric(
        InterleavedPlacement(node_count=4, node_size=NODE_SIZE, granularity=4096)
    )


class TestRouting:
    def test_read_write_roundtrip(self, fabric):
        fabric.write(100, b"payload")
        assert fabric.read(100, 7).value == b"payload"

    def test_cross_node_write_splits(self, fabric):
        data = b"A" * 32
        boundary = NODE_SIZE - 16
        result = fabric.write(boundary, data)
        assert result.segments == 2
        assert fabric.read(boundary, 32).value == data
        # The bytes really live on both nodes.
        assert fabric.nodes[0].read(boundary, 16) == b"A" * 16
        assert fabric.nodes[1].read(0, 16) == b"A" * 16

    def test_striped_read_segments(self, striped):
        striped.write(0, b"B" * (3 * 4096))
        result = striped.read(0, 3 * 4096)
        assert result.segments == 3
        assert result.value == b"B" * (3 * 4096)

    def test_word_ops(self, fabric):
        fabric.write_word(8, 77)
        assert fabric.read_word(8) == 77

    def test_atomics_route_to_owning_node(self, fabric):
        addr = NODE_SIZE + 64  # node 1
        fabric.write_word(addr, 5)
        old = fabric.fetch_add(addr, 2)
        assert old == 5
        assert fabric.nodes[1].read_word(64) == 7

    def test_cas_and_swap(self, fabric):
        fabric.write_word(0, 1)
        assert fabric.compare_and_swap(0, 1, 2) == (1, True)
        assert fabric.compare_and_swap(0, 1, 3) == (2, False)
        assert fabric.swap(0, 9) == 2

    def test_node_of(self, fabric):
        assert fabric.node_of(0) == 0
        assert fabric.node_of(NODE_SIZE) == 1

    def test_default_construction(self):
        f = Fabric(node_count=3, node_size=NODE_SIZE)
        assert len(f.nodes) == 3
        assert f.total_size == 3 * NODE_SIZE


class TestNotifierWiring:
    def test_writes_reach_notifier(self, fabric):
        events = []

        class Spy:
            def on_write(self, address, length, data):
                events.append((address, length, data))

        fabric.set_notifier(Spy())
        fabric.write(NODE_SIZE + 8, b"zz")
        assert events == [(NODE_SIZE + 8, 2, b"zz")]

    def test_notifier_gets_global_addresses_from_striped_nodes(self, striped):
        events = []

        class Spy:
            def on_write(self, address, length, data):
                events.append(address)

        striped.set_notifier(Spy())
        addr = 5 * 4096 + 16  # node 1, second stripe
        striped.write_word(addr, 3)
        assert events == [addr]


class TestIndirectionPolicy:
    def test_forward_counts_hops(self):
        fabric = Fabric(
            RangePlacement(node_count=2, node_size=NODE_SIZE),
            indirection_policy=IndirectionPolicy.FORWARD,
        )
        pointer_home = 0  # node 0
        target = NODE_SIZE + 128  # node 1
        fabric.write_word(pointer_home, target)
        fabric.write(target, encode_u64(99))
        result = fabric.load0(pointer_home, WORD)
        assert result.forward_hops == 1
        assert result.pointer == target

    def test_local_indirection_has_no_hops(self, fabric):
        fabric.write_word(0, 256)
        fabric.write(256, encode_u64(5))
        assert fabric.load0(0, WORD).forward_hops == 0

    def test_error_policy_raises_with_pending(self):
        fabric = Fabric(
            RangePlacement(node_count=2, node_size=NODE_SIZE),
            indirection_policy=IndirectionPolicy.ERROR,
        )
        target = NODE_SIZE + 64
        fabric.write_word(0, target)
        with pytest.raises(RemoteIndirectionError) as excinfo:
            fabric.load0(0, WORD)
        pending = excinfo.value.pending
        assert pending.kind == "read"
        assert pending.target == target
        assert excinfo.value.home_node == 0
        assert excinfo.value.target_node == 1

    def test_error_policy_faai_commits_pointer_bump(self):
        fabric = Fabric(
            RangePlacement(node_count=2, node_size=NODE_SIZE),
            indirection_policy=IndirectionPolicy.ERROR,
        )
        target = NODE_SIZE + 64
        fabric.write_word(0, target)
        with pytest.raises(RemoteIndirectionError):
            fabric.faai(0, WORD, WORD)
        # Section 7.1: the home-node half already committed.
        assert fabric.read_word(0) == target + WORD
