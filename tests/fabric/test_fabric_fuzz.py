"""Shadow-model fuzzing of the fabric substrate.

Hypothesis drives random sequences of every fabric operation against a
pure-Python shadow byte array; after each operation the returned values
must match what the shadow predicts, and at the end the entire far memory
must equal the shadow byte-for-byte. This is the deepest invariant the
simulator has: if it holds for arbitrary interleavings of primitives,
every data structure above is building on solid ground.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import Fabric, InterleavedPlacement, RangePlacement
from repro.fabric.wire import U64_MASK, WORD, decode_u64, encode_u64

NODE_SIZE = 1 << 20  # 1 MiB nodes keep shadow comparisons fast
ARENA = 16 << 10  # word offsets confined to the first 16 KiB
SHADOW_SIZE = ARENA + 256  # payloads may reach past the last word offset

word_offsets = st.integers(min_value=0, max_value=ARENA // WORD - 4).map(
    lambda w: w * WORD
)
u64s = st.integers(min_value=0, max_value=U64_MASK)
small_payloads = st.binary(min_size=1, max_size=128)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), word_offsets, small_payloads),
        st.tuples(st.just("read"), word_offsets, st.integers(min_value=1, max_value=128)),
        st.tuples(st.just("write_word"), word_offsets, u64s),
        st.tuples(st.just("faa"), word_offsets, u64s),
        st.tuples(st.just("swap"), word_offsets, u64s),
        st.tuples(st.just("cas"), word_offsets, st.tuples(u64s, u64s)),
        st.tuples(st.just("load0"), word_offsets, word_offsets),
        st.tuples(st.just("store0"), word_offsets, st.tuples(word_offsets, u64s)),
        st.tuples(st.just("faai"), word_offsets, word_offsets),
        st.tuples(st.just("saai"), word_offsets, st.tuples(word_offsets, u64s)),
        st.tuples(st.just("fsaai"), word_offsets, st.tuples(word_offsets, u64s)),
        st.tuples(st.just("add2"), word_offsets, st.tuples(word_offsets, u64s)),
    ),
    min_size=1,
    max_size=80,
)


class _Shadow:
    """Pure-Python reference semantics for the fabric operations."""

    def __init__(self, size: int) -> None:
        self.mem = bytearray(size)

    def read(self, addr, length):
        return bytes(self.mem[addr : addr + length])

    def write(self, addr, data):
        self.mem[addr : addr + len(data)] = data

    def read_word(self, addr):
        return decode_u64(self.read(addr, WORD))

    def write_word(self, addr, value):
        self.write(addr, encode_u64(value))

    def faa(self, addr, delta):
        old = self.read_word(addr)
        self.write_word(addr, (old + delta) & U64_MASK)
        return old


def _apply(fabric, shadow, op, a, b):
    """Run one operation on both sides; assert the returned values agree."""
    if op == "write":
        fabric.write(a, b)
        shadow.write(a, b)
    elif op == "read":
        assert fabric.read(a, b).value == shadow.read(a, b)
    elif op == "write_word":
        fabric.write_word(a, b)
        shadow.write_word(a, b)
    elif op == "faa":
        assert fabric.fetch_add(a, b) == shadow.faa(a, b)
    elif op == "swap":
        old = fabric.swap(a, b)
        assert old == shadow.read_word(a)
        shadow.write_word(a, b)
    elif op == "cas":
        expected, new = b
        old, ok = fabric.compare_and_swap(a, expected, new)
        assert old == shadow.read_word(a)
        assert ok == (old == expected)
        if ok:
            shadow.write_word(a, new)
    elif op == "load0":
        fabric.write_word(a, b)  # plant a valid pointer
        shadow.write_word(a, b)
        result = fabric.load0(a, WORD)
        assert result.pointer == b
        assert result.value == shadow.read(b, WORD)
    elif op == "store0":
        target, value = b
        fabric.write_word(a, target)
        shadow.write_word(a, target)
        fabric.store0(a, encode_u64(value))
        shadow.write_word(target, value)
    elif op == "faai":
        fabric.write_word(a, b)
        shadow.write_word(a, b)
        result = fabric.faai(a, WORD, WORD)
        # Exact fabric order: bump first, then read at the *old* pointer —
        # observable when the pointer cell points at itself.
        old = shadow.faa(a, WORD)
        assert result.pointer == old == b
        assert result.value == shadow.read(old, WORD)
    elif op == "saai":
        target, value = b
        fabric.write_word(a, target)
        shadow.write_word(a, target)
        result = fabric.saai(a, WORD, encode_u64(value))
        old = shadow.faa(a, WORD)
        assert result.pointer == old == target
        shadow.write_word(old, value)
    elif op == "fsaai":
        target, value = b
        fabric.write_word(a, target)
        shadow.write_word(a, target)
        result = fabric.fsaai(a, WORD, encode_u64(value))
        old = shadow.faa(a, WORD)
        assert result.pointer == old == target
        assert result.value == shadow.read(old, WORD)
        shadow.write_word(old, value)
    elif op == "add2":
        target, delta = b
        fabric.write_word(a, target)
        shadow.write_word(a, target)
        result = fabric.add2(a, delta, WORD)
        assert result.value == shadow.read_word(target + WORD)
        shadow.faa(target + WORD, delta)
    else:  # pragma: no cover
        raise AssertionError(op)


class TestFabricShadowModel:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_single_node(self, ops):
        fabric = Fabric(RangePlacement(node_count=1, node_size=NODE_SIZE))
        shadow = _Shadow(SHADOW_SIZE)
        for op, a, b in ops:
            _apply(fabric, shadow, op, a, b)
        assert fabric.read(0, SHADOW_SIZE).value == shadow.read(0, SHADOW_SIZE)

    @settings(max_examples=40, deadline=None)
    @given(operations)
    def test_striped_four_nodes(self, ops):
        # The same invariant must hold when every range is interleaved
        # across nodes at a granularity small enough that most multi-word
        # operations straddle stripes.
        fabric = Fabric(
            InterleavedPlacement(node_count=4, node_size=NODE_SIZE, granularity=64)
        )
        shadow = _Shadow(SHADOW_SIZE)
        for op, a, b in ops:
            _apply(fabric, shadow, op, a, b)
        assert fabric.read(0, SHADOW_SIZE).value == shadow.read(0, SHADOW_SIZE)
