"""Unit tests for the transient-fault injection fabric."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric import (
    FarCorruptionError,
    FarTimeoutError,
    FaultInjector,
    FaultPlan,
    FaultRule,
)

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


def raw_client(cluster, **kwargs):
    """A client with retries and breakers off: faults surface directly."""
    kwargs.setdefault("retry_policy", None)
    kwargs.setdefault("breaker_policy", None)
    return cluster.client(**kwargs)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("meteor", 0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule("timeout", 1.5)
        with pytest.raises(ValueError):
            FaultRule("timeout", -0.1)

    def test_matching_scopes(self):
        rule = FaultRule(
            "timeout", 1.0, node=1, address_range=(100, 200), start_op=5, end_op=10
        )
        assert rule.matches(5, 1, 150)
        assert not rule.matches(4, 1, 150)  # before window
        assert not rule.matches(10, 1, 150)  # window is half-open
        assert not rule.matches(5, 0, 150)  # wrong node
        assert not rule.matches(5, 1, 200)  # address range is half-open


class TestInjection:
    def test_no_injector_no_faults(self, cluster):
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        for _ in range(100):
            c.write_u64(addr, 1)
        assert c.metrics.timeouts == 0

    def test_certain_timeout_raises(self, cluster):
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)

    def test_timeout_has_no_side_effects(self, cluster):
        """Request-drop semantics: a timed-out write/atomic never executed,
        so retrying non-idempotent ops is safe."""
        addr = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write_u64(addr, 7)
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0)
        )
        c = raw_client(cluster)
        with pytest.raises(FarTimeoutError):
            c.write_u64(addr, 99)
        with pytest.raises(FarTimeoutError):
            c.faa(addr, 5)
        injector.enabled = False
        assert c.read_u64(addr) == 7  # untouched by the dropped ops

    def test_node_scoped_timeouts(self, cluster):
        node1_base = cluster.fabric.placement.node_size
        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0, node=1)
        )
        c = raw_client(cluster)
        addr0 = cluster.allocator.alloc(64)
        assert cluster.fabric.node_of(addr0) == 0
        c.write_u64(addr0, 1)  # node 0 unaffected
        with pytest.raises(FarTimeoutError):
            c.read_u64(node1_base)

    def test_address_scoped_timeouts(self, cluster):
        a = cluster.allocator.alloc(64)
        b = cluster.allocator.alloc(64)
        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0, address_range=(b, b + 64))
        )
        c = raw_client(cluster)
        c.write_u64(a, 1)
        with pytest.raises(FarTimeoutError):
            c.write_u64(b, 1)

    def test_latency_spike_slows_but_succeeds(self, cluster):
        addr = cluster.allocator.alloc(64)
        baseline = raw_client(cluster)
        baseline.read_u64(addr)
        base_ns = baseline.clock.now_ns

        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_spikes(1.0, multiplier=8.0)
        )
        c = raw_client(cluster)
        assert c.read_u64(addr) == 0
        assert c.clock.now_ns == pytest.approx(8.0 * base_ns)
        assert c.metrics.far_accesses == 1  # slowed, not failed

    def test_flaky_window_opens_and_self_heals(self, cluster):
        addr = cluster.allocator.alloc(64)
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().flaky_at(0, node=0, duration=3)
        )
        c = raw_client(cluster)
        for _ in range(4):  # the opening access + 3 in-window accesses drop
            with pytest.raises(FarTimeoutError):
                c.read_u64(addr)
        assert c.read_u64(addr) == 0  # self-healed
        assert injector.stats.flaky_windows_opened == 1
        assert injector.stats.flaky_drops == 4

    def test_scheduled_timeout_fires_at_exact_op(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(2))
        c = raw_client(cluster)
        c.write_u64(addr, 1)  # access 0
        c.write_u64(addr, 2)  # access 1
        with pytest.raises(FarTimeoutError):
            c.write_u64(addr, 3)  # access 2: dropped
        c.write_u64(addr, 4)  # access 3: fine again

    def test_spike_window(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(
            seed=1, plan=FaultPlan().spike_between(1, 2, multiplier=4.0)
        )
        c = raw_client(cluster)
        c.read_u64(addr)
        t1 = c.clock.now_ns
        c.read_u64(addr)  # spiked
        t2 = c.clock.now_ns - t1
        assert t2 == pytest.approx(4.0 * t1)


class TestDeterminism:
    def _run(self, seed):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        injector = cluster.inject_faults(
            seed=seed,
            plan=FaultPlan()
            .random_timeouts(0.2)
            .random_spikes(0.1, multiplier=4.0)
            .random_flaky(0.02, duration=4),
        )
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(1024)
        outcomes = []
        for i in range(200):
            try:
                c.write_u64(addr + (i % 16) * 8, i)
                outcomes.append("ok")
            except FarTimeoutError:
                outcomes.append("timeout")
        return outcomes, injector.stats.as_dict()

    def test_same_seed_same_faults(self):
        out1, stats1 = self._run(42)
        out2, stats2 = self._run(42)
        assert out1 == out2
        assert stats1 == stats2
        assert stats1["timeouts_injected"] + stats1["flaky_drops"] > 0

    def test_different_seed_different_faults(self):
        out1, _ = self._run(42)
        out2, _ = self._run(43)
        assert out1 != out2

    def test_reset_replays(self):
        injector = FaultInjector(seed=9, plan=FaultPlan().random_timeouts(0.5))

        def drive():
            hits = []
            for i in range(50):
                try:
                    injector.before_access(0, i * 8)
                    hits.append(False)
                except FarTimeoutError:
                    hits.append(True)
            return hits

        first = drive()
        injector.reset()
        assert drive() == first


class TestCorruption:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule("corrupt", 0.5, bits=0)
        with pytest.raises(ValueError):
            FaultRule("corrupt", 0.5, span=0)

    def test_corruption_is_silent_to_plain_reads(self, cluster):
        """The dangerous half of the fault model: rotted bytes flow out of
        an unverified read with no error at all."""
        addr = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write(addr, b"\xaa" * 64)
        cluster.inject_faults(
            seed=3, plan=FaultPlan().corrupt_at(1, bits=1, span=8)
        )
        c = raw_client(cluster)
        c.read_u64(addr)  # access 0: clean
        rotted = c.read(addr, 64)  # access 1: rots, then reads
        assert rotted != b"\xaa" * 64  # wrong bytes, zero errors raised
        assert c.metrics.far_accesses == 2

    def test_verified_read_detects_certain_corruption(self, cluster):
        addr = cluster.allocator.alloc(256)
        c = raw_client(cluster)
        c.write_framed(addr, b"x" * 32, version=1)
        # span=8 pins the flips inside the stored CRC word, and an odd
        # bit count cannot cancel itself out: detection is certain.
        injector = cluster.inject_faults(
            seed=5, plan=FaultPlan().corrupt_at(0, bits=3, span=8)
        )
        with pytest.raises(FarCorruptionError):
            c.read_verified(addr, 32)
        assert injector.stats.corruptions_injected == 1
        assert injector.stats.bits_flipped == 3
        assert c.metrics.verify_misses == 1

    def test_verified_read_heals_from_fallback(self, cluster):
        a = cluster.allocator.alloc(256)
        b = cluster.allocator.alloc(256)
        c = raw_client(cluster)
        c.write_framed(a, b"payload!" * 4, version=7)
        c.write_framed(b, b"payload!" * 4, version=7)
        cluster.inject_faults(
            seed=5, plan=FaultPlan().corrupt_at(0, bits=1, span=8)
        )
        snap = c.metrics.snapshot()
        version, payload = c.read_verified(a, 32, fallback=(b,))
        delta = c.metrics.delta(snap)
        assert (version, payload) == (7, b"payload!" * 4)
        # Exactly one extra far access for the verify-miss: rotten read + re-read.
        assert delta.far_accesses == 2
        assert delta.verify_misses == 1
        assert delta.verified_reads == 2

    def test_corruption_applies_even_when_read_fails_over(self, cluster):
        """Rot lands before the op body runs, so it survives even when
        the access itself dies for another reason."""
        addr = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write_u64(addr, 0)
        cluster.inject_faults(
            seed=8,
            plan=FaultPlan()
            .corrupt_at(0, bits=1, span=8)
            .timeout_at(0),
        )
        c = raw_client(cluster)
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)


class TestTornWrites:
    def test_torn_write_leaves_word_aligned_prefix(self, cluster):
        addr = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write(addr, b"\x11" * 64)
        injector = cluster.inject_faults(seed=2, plan=FaultPlan().torn_at(0))
        c = raw_client(cluster)
        with pytest.raises(FarTimeoutError) as excinfo:
            c.write(addr, b"\x22" * 64)
        assert excinfo.value.torn
        injector.enabled = False
        after = c.read(addr, 64)
        assert after != b"\x11" * 64 or after != b"\x22" * 64
        prefix = len(after) - len(after.lstrip(b"\x22"))
        # Everything before the tear is new, everything after is old,
        # and the boundary sits on a word.
        assert after == b"\x22" * prefix + b"\x11" * (64 - prefix)
        assert prefix % 8 == 0
        assert injector.stats.torn_writes_injected == 1

    def test_torn_rules_skip_non_write_kinds(self, cluster):
        """A TORN rule never matches reads/atomics — and crucially draws
        no RNG for them, so the schedule is workload-kind independent."""
        addr = cluster.allocator.alloc(64)
        injector = cluster.inject_faults(
            seed=2, plan=FaultPlan().random_torn(1.0)
        )
        c = raw_client(cluster)
        assert c.read_u64(addr) == 0
        c.faa(addr, 1)
        assert injector.stats.torn_writes_injected == 0
        with pytest.raises(FarTimeoutError):
            c.write(addr, b"\x01" * 16)

    def test_retry_heals_the_tear(self, cluster):
        """The client's normal retry ladder repairs a torn write: the
        retried (full) write overwrites the partial prefix."""
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=2, plan=FaultPlan().torn_at(0))
        c = cluster.client(breaker_policy=None)  # retries on
        c.write(addr, b"\x77" * 64)
        assert c.read(addr, 64) == b"\x77" * 64
        assert c.metrics.retries >= 1
        assert c.metrics.timeouts >= 1

    def test_torn_wscatter_tears_first_buffer_only(self, cluster):
        a = cluster.allocator.alloc(64)
        b = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write(a, b"\x11" * 32)
        setup.write(b, b"\x11" * 32)
        injector = cluster.inject_faults(seed=4, plan=FaultPlan().torn_at(0))
        c = raw_client(cluster)
        with pytest.raises(FarTimeoutError):
            c.wscatter([(a, 32), (b, 32)], b"\x22" * 64)
        injector.enabled = False
        assert c.read(b, 32) == b"\x11" * 32  # second buffer never reached


class TestFiveKindDeterminism:
    """(seed, workload) → byte-identical fault schedule across all five
    fault kinds, including the far bytes the faults left behind."""

    PLAN_KINDS = ("timeout", "latency", "flaky", "corrupt", "torn")

    def _run(self, seed):
        cluster = Cluster(node_count=2, node_size=1 << 16)
        injector = cluster.inject_faults(
            seed=seed,
            plan=FaultPlan()
            .random_timeouts(0.15)
            .random_spikes(0.05, multiplier=4.0)
            .random_flaky(0.02, duration=3)
            .random_corruption(0.1, bits=2, span=16)
            .random_torn(0.15),
        )
        c = raw_client(cluster)
        base = cluster.allocator.alloc(2048)
        workload = random.Random(seed ^ 0xABCDEF)
        outcomes = []
        for i in range(150):
            op = workload.randrange(3)
            addr = base + workload.randrange(0, 1024) // 8 * 8
            try:
                if op == 0:
                    c.write(addr, bytes([i % 256]) * 64)
                    outcomes.append("w")
                elif op == 1:
                    outcomes.append(c.read(addr, 64))
                else:
                    outcomes.append(c.faa(addr, i))
            except FarTimeoutError as err:
                outcomes.append(("timeout", err.torn))
        memory = b"".join(bytes(node._data) for node in cluster.fabric.nodes)
        return outcomes, injector.stats.as_dict(), memory

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_replay_is_byte_identical(self, seed):
        out1, stats1, mem1 = self._run(seed)
        out2, stats2, mem2 = self._run(seed)
        assert out1 == out2
        assert stats1 == stats2
        assert mem1 == mem2

    def test_all_five_kinds_fire(self):
        # One fixed seed that provably exercises every kind in the plan.
        _, stats, _ = self._run(99)
        assert stats["timeouts_injected"] > 0
        assert stats["spikes_injected"] > 0
        assert stats["corruptions_injected"] > 0
        assert stats["torn_writes_injected"] > 0
        assert stats["flaky_windows_opened"] > 0


class TestInjectorPlumbing:
    def test_disabled_injector_is_silent(self, cluster):
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0)
        )
        injector.enabled = False
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.write_u64(addr, 1)
        assert injector.stats.checks == 0

    def test_detach(self, cluster):
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        cluster.fabric.set_fault_injector(None)
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.write_u64(addr, 1)

    def test_stats_counts(self, cluster):
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_spikes(1.0, multiplier=2.0)
        )
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.read_u64(addr)
        c.read_u64(addr)
        assert injector.stats.checks == 2
        assert injector.stats.spikes_injected == 2
        assert injector.stats.faults_injected == 2
