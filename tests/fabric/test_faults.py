"""Unit tests for the transient-fault injection fabric."""

import pytest

from repro import Cluster
from repro.fabric import (
    FarTimeoutError,
    FaultInjector,
    FaultPlan,
    FaultRule,
)

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


def raw_client(cluster, **kwargs):
    """A client with retries and breakers off: faults surface directly."""
    kwargs.setdefault("retry_policy", None)
    kwargs.setdefault("breaker_policy", None)
    return cluster.client(**kwargs)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("meteor", 0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule("timeout", 1.5)
        with pytest.raises(ValueError):
            FaultRule("timeout", -0.1)

    def test_matching_scopes(self):
        rule = FaultRule(
            "timeout", 1.0, node=1, address_range=(100, 200), start_op=5, end_op=10
        )
        assert rule.matches(5, 1, 150)
        assert not rule.matches(4, 1, 150)  # before window
        assert not rule.matches(10, 1, 150)  # window is half-open
        assert not rule.matches(5, 0, 150)  # wrong node
        assert not rule.matches(5, 1, 200)  # address range is half-open


class TestInjection:
    def test_no_injector_no_faults(self, cluster):
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        for _ in range(100):
            c.write_u64(addr, 1)
        assert c.metrics.timeouts == 0

    def test_certain_timeout_raises(self, cluster):
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)

    def test_timeout_has_no_side_effects(self, cluster):
        """Request-drop semantics: a timed-out write/atomic never executed,
        so retrying non-idempotent ops is safe."""
        addr = cluster.allocator.alloc(64)
        setup = raw_client(cluster)
        setup.write_u64(addr, 7)
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0)
        )
        c = raw_client(cluster)
        with pytest.raises(FarTimeoutError):
            c.write_u64(addr, 99)
        with pytest.raises(FarTimeoutError):
            c.faa(addr, 5)
        injector.enabled = False
        assert c.read_u64(addr) == 7  # untouched by the dropped ops

    def test_node_scoped_timeouts(self, cluster):
        node1_base = cluster.fabric.placement.node_size
        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0, node=1)
        )
        c = raw_client(cluster)
        addr0 = cluster.allocator.alloc(64)
        assert cluster.fabric.node_of(addr0) == 0
        c.write_u64(addr0, 1)  # node 0 unaffected
        with pytest.raises(FarTimeoutError):
            c.read_u64(node1_base)

    def test_address_scoped_timeouts(self, cluster):
        a = cluster.allocator.alloc(64)
        b = cluster.allocator.alloc(64)
        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0, address_range=(b, b + 64))
        )
        c = raw_client(cluster)
        c.write_u64(a, 1)
        with pytest.raises(FarTimeoutError):
            c.write_u64(b, 1)

    def test_latency_spike_slows_but_succeeds(self, cluster):
        addr = cluster.allocator.alloc(64)
        baseline = raw_client(cluster)
        baseline.read_u64(addr)
        base_ns = baseline.clock.now_ns

        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_spikes(1.0, multiplier=8.0)
        )
        c = raw_client(cluster)
        assert c.read_u64(addr) == 0
        assert c.clock.now_ns == pytest.approx(8.0 * base_ns)
        assert c.metrics.far_accesses == 1  # slowed, not failed

    def test_flaky_window_opens_and_self_heals(self, cluster):
        addr = cluster.allocator.alloc(64)
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().flaky_at(0, node=0, duration=3)
        )
        c = raw_client(cluster)
        for _ in range(4):  # the opening access + 3 in-window accesses drop
            with pytest.raises(FarTimeoutError):
                c.read_u64(addr)
        assert c.read_u64(addr) == 0  # self-healed
        assert injector.stats.flaky_windows_opened == 1
        assert injector.stats.flaky_drops == 4

    def test_scheduled_timeout_fires_at_exact_op(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(2))
        c = raw_client(cluster)
        c.write_u64(addr, 1)  # access 0
        c.write_u64(addr, 2)  # access 1
        with pytest.raises(FarTimeoutError):
            c.write_u64(addr, 3)  # access 2: dropped
        c.write_u64(addr, 4)  # access 3: fine again

    def test_spike_window(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(
            seed=1, plan=FaultPlan().spike_between(1, 2, multiplier=4.0)
        )
        c = raw_client(cluster)
        c.read_u64(addr)
        t1 = c.clock.now_ns
        c.read_u64(addr)  # spiked
        t2 = c.clock.now_ns - t1
        assert t2 == pytest.approx(4.0 * t1)


class TestDeterminism:
    def _run(self, seed):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        injector = cluster.inject_faults(
            seed=seed,
            plan=FaultPlan()
            .random_timeouts(0.2)
            .random_spikes(0.1, multiplier=4.0)
            .random_flaky(0.02, duration=4),
        )
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(1024)
        outcomes = []
        for i in range(200):
            try:
                c.write_u64(addr + (i % 16) * 8, i)
                outcomes.append("ok")
            except FarTimeoutError:
                outcomes.append("timeout")
        return outcomes, injector.stats.as_dict()

    def test_same_seed_same_faults(self):
        out1, stats1 = self._run(42)
        out2, stats2 = self._run(42)
        assert out1 == out2
        assert stats1 == stats2
        assert stats1["timeouts_injected"] + stats1["flaky_drops"] > 0

    def test_different_seed_different_faults(self):
        out1, _ = self._run(42)
        out2, _ = self._run(43)
        assert out1 != out2

    def test_reset_replays(self):
        injector = FaultInjector(seed=9, plan=FaultPlan().random_timeouts(0.5))

        def drive():
            hits = []
            for i in range(50):
                try:
                    injector.before_access(0, i * 8)
                    hits.append(False)
                except FarTimeoutError:
                    hits.append(True)
            return hits

        first = drive()
        injector.reset()
        assert drive() == first


class TestInjectorPlumbing:
    def test_disabled_injector_is_silent(self, cluster):
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0)
        )
        injector.enabled = False
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.write_u64(addr, 1)
        assert injector.stats.checks == 0

    def test_detach(self, cluster):
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        cluster.fabric.set_fault_injector(None)
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.write_u64(addr, 1)

    def test_stats_counts(self, cluster):
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_spikes(1.0, multiplier=2.0)
        )
        c = raw_client(cluster)
        addr = cluster.allocator.alloc(64)
        c.read_u64(addr)
        c.read_u64(addr)
        assert injector.stats.checks == 2
        assert injector.stats.spikes_injected == 2
        assert injector.stats.faults_injected == 2
