"""Unit tests for the checksum framing layer and verified client I/O."""

import pytest

from repro import Cluster
from repro.fabric import (
    FRAME_OVERHEAD,
    FarCorruptionError,
    IntegrityStats,
    crc32_u64,
    frame_block,
    frame_size,
    try_unframe,
    unframe_block,
)

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


class TestFraming:
    def test_roundtrip(self):
        frame = frame_block(b"hello far memory", version=42)
        assert len(frame) == FRAME_OVERHEAD + 16
        assert try_unframe(frame) == (42, b"hello far memory")

    def test_frame_size(self):
        assert frame_size(48) == 48 + FRAME_OVERHEAD
        with pytest.raises(ValueError):
            frame_size(0)

    def test_every_single_bit_flip_is_detected(self):
        frame = bytearray(frame_block(b"\x00" * 24, version=1))
        for byte in range(len(frame)):
            for bit in range(8):
                frame[byte] ^= 1 << bit
                assert try_unframe(bytes(frame)) is None, (byte, bit)
                frame[byte] ^= 1 << bit
        assert try_unframe(bytes(frame)) == (1, b"\x00" * 24)

    def test_all_zero_bytes_do_not_verify(self):
        """A never-written (zero) far range must fail verification — the
        zero CRC word does not match the zero body."""
        assert try_unframe(b"\x00" * frame_size(64)) is None

    def test_short_frame_rejected(self):
        assert try_unframe(b"\x00" * FRAME_OVERHEAD) is None
        assert try_unframe(b"") is None

    def test_unframe_block_raises_with_location(self):
        frame = bytearray(frame_block(b"data" * 4, version=3))
        frame[-1] ^= 0x80
        with pytest.raises(FarCorruptionError) as excinfo:
            unframe_block(bytes(frame), node=1, address=0x400)
        assert excinfo.value.node == 1
        assert excinfo.value.address == 0x400

    def test_crc32_u64_fits_a_word(self):
        value = crc32_u64(b"some bytes")
        assert 0 <= value < 2**64
        assert crc32_u64(b"some bytes") == value  # pure

    def test_stats_dict(self):
        stats = IntegrityStats(frames_written=2, frames_verified=5, verify_misses=1)
        assert stats.as_dict() == {
            "frames_written": 2,
            "frames_verified": 5,
            "verify_misses": 1,
        }


class TestVerifiedClientIO:
    def test_write_framed_read_verified_roundtrip(self, cluster):
        c = cluster.client()
        addr = cluster.allocator.alloc(256)
        snap = c.metrics.snapshot()
        c.write_framed(addr, b"p" * 40, version=9)
        assert c.read_verified(addr, 40) == (9, b"p" * 40)
        delta = c.metrics.delta(snap)
        # One far access each way: verification happens in near memory.
        assert delta.far_accesses == 2
        assert delta.verified_reads == 1
        assert delta.verify_misses == 0

    def test_read_verified_raises_on_unwritten_range(self, cluster):
        c = cluster.client()
        addr = cluster.allocator.alloc(256)
        with pytest.raises(FarCorruptionError):
            c.read_verified(addr, 40)
        assert c.metrics.verify_misses == 1

    def test_read_verified_fallback_order_and_cost(self, cluster):
        c = cluster.client()
        bad = cluster.allocator.alloc(256)
        good = cluster.allocator.alloc(256)
        c.write_framed(good, b"g" * 16, version=2)
        snap = c.metrics.snapshot()
        assert c.read_verified(bad, 16, fallback=(good,)) == (2, b"g" * 16)
        delta = c.metrics.delta(snap)
        assert delta.far_accesses == 2  # miss costs exactly one extra read
        assert delta.verify_misses == 1
        assert delta.verified_reads == 2

    def test_read_verified_exhausted_raises_last(self, cluster):
        c = cluster.client()
        a = cluster.allocator.alloc(256)
        b = cluster.allocator.alloc(256)
        with pytest.raises(FarCorruptionError) as excinfo:
            c.read_verified(a, 16, fallback=(b,))
        assert excinfo.value.address == b  # the last replica tried
        assert c.metrics.verify_misses == 2
