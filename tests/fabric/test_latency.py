"""Unit tests for the cost model and simulated clocks."""

import pytest

from repro.fabric.latency import CostModel, SimClock, Stopwatch


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_far_is_order_of_magnitude_slower_than_near(self):
        # Section 3.1: far O(1 us), near O(100 ns).
        assert self.model.far_ns / self.model.near_ns >= 5

    def test_small_payload_rides_inline(self):
        assert self.model.far_access_ns(8) == self.model.far_ns

    def test_large_payload_pays_bandwidth(self):
        one_kb = self.model.far_access_ns(1024)
        assert one_kb > self.model.far_ns
        assert one_kb == self.model.far_ns + (1024 - self.model.inline_bytes) * self.model.byte_ns

    def test_forward_hops_add_cost(self):
        direct = self.model.far_access_ns(8)
        forwarded = self.model.far_access_ns(8, forward_hops=1)
        assert forwarded == direct + self.model.forward_hop_ns
        # Forwarding must still be cheaper than a second full round trip
        # (the section 7.1 argument for forwarding over erroring).
        assert forwarded < 2 * direct

    def test_near_access_scales_linearly(self):
        assert self.model.near_access_ns(3) == 3 * self.model.near_ns

    def test_payload_ns_never_negative(self):
        assert self.model.payload_ns(0) == 0.0
        assert self.model.payload_ns(self.model.inline_bytes) == 0.0


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now_ns == 150

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_sync_to_only_moves_forward(self):
        clock = SimClock(now_ns=100)
        clock.sync_to(50)
        assert clock.now_ns == 100
        clock.sync_to(200)
        assert clock.now_ns == 200

    def test_reset(self):
        clock = SimClock(now_ns=99)
        clock.reset()
        assert clock.now_ns == 0.0


class TestStopwatch:
    def test_elapsed(self):
        clock = SimClock()
        clock.advance(10)
        watch = Stopwatch(clock)
        clock.advance(25)
        assert watch.elapsed_ns() == 25
