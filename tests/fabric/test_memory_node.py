"""Unit + property tests for a single memory node."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.errors import AddressError, AlignmentError
from repro.fabric.memory_node import MemoryNode
from repro.fabric.wire import U64_MASK

SIZE = 1 << 16


@pytest.fixture
def node() -> MemoryNode:
    return MemoryNode(node_id=0, size=SIZE)


class TestReadWrite:
    def test_starts_zeroed(self, node):
        assert node.read(0, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self, node):
        node.write(100, b"hello")
        assert node.read(100, 5) == b"hello"

    def test_word_roundtrip(self, node):
        node.write_word(8, 12345)
        assert node.read_word(8) == 12345

    def test_out_of_bounds_read(self, node):
        with pytest.raises(AddressError):
            node.read(SIZE - 4, 8)

    def test_out_of_bounds_write(self, node):
        with pytest.raises(AddressError):
            node.write(SIZE, b"x")

    def test_negative_offset(self, node):
        with pytest.raises(AddressError):
            node.read(-1, 1)

    def test_unaligned_word_rejected(self, node):
        with pytest.raises(AlignmentError):
            node.read_word(3)
        with pytest.raises(AlignmentError):
            node.write_word(3, 1)

    @given(
        st.integers(min_value=0, max_value=SIZE - 256),
        st.binary(min_size=1, max_size=256),
    )
    def test_write_read_property(self, offset, data):
        node = MemoryNode(0, SIZE)
        node.write(offset, data)
        assert node.read(offset, len(data)) == data


class TestAtomics:
    def test_cas_success(self, node):
        node.write_word(0, 5)
        old, ok = node.compare_and_swap(0, 5, 9)
        assert (old, ok) == (5, True)
        assert node.read_word(0) == 9

    def test_cas_failure_leaves_value(self, node):
        node.write_word(0, 5)
        old, ok = node.compare_and_swap(0, 4, 9)
        assert (old, ok) == (5, False)
        assert node.read_word(0) == 5

    def test_fetch_add_returns_old(self, node):
        node.write_word(8, 10)
        assert node.fetch_add(8, 3) == 10
        assert node.read_word(8) == 13

    def test_fetch_add_wraps(self, node):
        node.write_word(8, U64_MASK)
        node.fetch_add(8, 1)
        assert node.read_word(8) == 0

    def test_fetch_add_negative(self, node):
        node.write_word(8, 5)
        node.fetch_add(8, -2)
        assert node.read_word(8) == 3

    def test_swap(self, node):
        node.write_word(16, 1)
        assert node.swap(16, 2) == 1
        assert node.read_word(16) == 2

    def test_atomics_require_alignment(self, node):
        with pytest.raises(AlignmentError):
            node.fetch_add(4, 1)


class TestWriteHook:
    def test_hook_fires_on_write(self, node):
        events = []
        node.set_write_hook(lambda *args: events.append(args))
        node.write(24, b"ab")
        assert events == [(0, 24, 2, b"ab")]

    def test_hook_fires_on_atomics(self, node):
        events = []
        node.set_write_hook(lambda *args: events.append(args))
        node.fetch_add(0, 1)
        node.swap(8, 2)
        node.compare_and_swap(16, 0, 1)
        assert len(events) == 3

    def test_hook_not_fired_on_failed_cas(self, node):
        events = []
        node.write_word(0, 7)
        node.set_write_hook(lambda *args: events.append(args))
        node.compare_and_swap(0, 1, 2)
        assert events == []

    def test_hook_not_fired_on_read(self, node):
        events = []
        node.set_write_hook(lambda *args: events.append(args))
        node.read(0, 8)
        assert events == []

    def test_hook_sees_new_bytes(self, node):
        captured = {}
        node.set_write_hook(
            lambda nid, off, length, data: captured.update(data=data)
        )
        node.write_word(0, 0xAB)
        assert captured["data"][0] == 0xAB


class TestStats:
    def test_counts(self, node):
        node.write(0, b"xy")
        node.read(0, 2)
        node.fetch_add(8, 1)
        assert node.stats.writes == 1
        assert node.stats.reads == 1
        assert node.stats.atomics == 1
        assert node.stats.bytes_written == 2
        assert node.stats.bytes_read == 2
        assert node.stats.total_ops() == 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            MemoryNode(0, 0)
