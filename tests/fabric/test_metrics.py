"""Unit tests for operation accounting."""

from repro.fabric.metrics import Metrics, aggregate


class TestMetrics:
    def test_starts_zeroed(self):
        m = Metrics()
        assert m.far_accesses == 0
        assert all(v == 0 for v in m.as_dict().values())

    def test_snapshot_is_independent(self):
        m = Metrics()
        snap = m.snapshot()
        m.far_accesses += 5
        assert snap.far_accesses == 0

    def test_delta(self):
        m = Metrics()
        m.far_accesses = 3
        snap = m.snapshot()
        m.far_accesses = 10
        m.bytes_read = 64
        diff = m.delta(snap)
        assert diff.far_accesses == 7
        assert diff.bytes_read == 64

    def test_delta_custom_counters(self):
        m = Metrics()
        m.bump("slow_path", 2)
        snap = m.snapshot()
        m.bump("slow_path", 3)
        m.bump("other")
        diff = m.delta(snap)
        assert diff.custom["slow_path"] == 3
        assert diff.custom["other"] == 1
        assert "unrelated" not in diff.custom

    def test_merge(self):
        a = Metrics()
        a.far_accesses = 2
        a.bump("x")
        b = Metrics()
        b.far_accesses = 3
        b.bump("x", 4)
        a.merge(b)
        assert a.far_accesses == 5
        assert a.custom["x"] == 5

    def test_reset(self):
        m = Metrics()
        m.far_accesses = 9
        m.bump("y")
        m.reset()
        assert m.far_accesses == 0
        assert not m.custom

    def test_as_dict_includes_custom(self):
        m = Metrics()
        m.bump("fences", 2)
        assert m.as_dict()["custom.fences"] == 2

    def test_str_omits_zero_counters(self):
        m = Metrics()
        m.far_accesses = 1
        text = str(m)
        assert "far_accesses=1" in text
        assert "rpcs" not in text


class TestAggregate:
    def test_aggregate_sums(self):
        ms = []
        for i in range(3):
            m = Metrics()
            m.far_accesses = i + 1
            ms.append(m)
        total = aggregate(ms)
        assert total.far_accesses == 6

    def test_aggregate_empty(self):
        assert aggregate([]).far_accesses == 0


class TestCounterNames:
    def test_counter_names_match_dataclass_fields(self):
        """counter_names() is the authoritative list of first-class int
        counters (everything except the custom dict)."""
        import dataclasses

        names = Metrics.counter_names()
        fields = {
            f.name for f in dataclasses.fields(Metrics) if f.name != "custom"
        }
        assert set(names) == fields
        assert len(names) == len(set(names))

    def test_telemetry_field_list_stays_in_sync(self):
        """The drift guard the telemetry plane relies on: if a counter is
        added to Metrics, CLIENT_COUNTER_FIELDS must learn it too (the
        module also asserts this at import time; this test gives the
        readable diff)."""
        from repro.obs.telemetry import CLIENT_COUNTER_FIELDS

        assert set(CLIENT_COUNTER_FIELDS) == set(Metrics.counter_names())

    def test_counters_are_real_attributes(self):
        m = Metrics()
        for name in Metrics.counter_names():
            assert getattr(m, name) == 0

    def test_txn_counters_are_registered(self):
        """PR 10: the transaction layer's five counters flow through
        counter_names() and the telemetry plane's field list."""
        from repro.obs.telemetry import CLIENT_COUNTER_FIELDS

        txn_names = {
            "txn_commits",
            "txn_aborts",
            "txn_conflicts",
            "txn_rollforwards",
            "txn_rollbacks",
        }
        assert txn_names <= set(Metrics.counter_names())
        assert txn_names <= set(CLIENT_COUNTER_FIELDS)
