"""Property tests for the Metrics snapshot/delta/merge algebra.

Every ledger in the repo — profiler rows, tracer span deltas, benchmark
tables — is built on ``snapshot()``/``delta()``; these tests pin the
algebra down for *every* counter via ``_INT_FIELDS`` introspection, so a
newly added counter is covered automatically (and the import-time guard
in metrics.py means it cannot be added without joining ``_INT_FIELDS``).
"""

from collections import Counter
from dataclasses import fields

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.metrics import Metrics, aggregate

counter_values = st.fixed_dictionaries(
    {},
    optional={
        name: st.integers(0, 1 << 20) for name in Metrics._INT_FIELDS
    },
)
custom_values = st.dictionaries(
    st.sampled_from(["slow_path", "cache_miss", "refresh", "split"]),
    st.integers(-8, 8),
    max_size=4,
)


def _make(values, custom=None):
    metrics = Metrics(**values)
    if custom:
        metrics.custom.update(custom)
    return metrics


def test_int_fields_match_dataclass():
    # The introspection contract: _INT_FIELDS is exactly the dataclass
    # fields minus the custom Counter (also asserted at import time).
    assert set(Metrics._INT_FIELDS) == {
        f.name for f in fields(Metrics) if f.name != "custom"
    }
    assert len(Metrics._INT_FIELDS) == len(set(Metrics._INT_FIELDS))


@given(counter_values, custom_values)
@settings(max_examples=50, deadline=None)
def test_snapshot_is_frozen_and_self_delta_is_zero(values, custom):
    metrics = _make(values, custom)
    snapshot = metrics.snapshot()
    # A snapshot equals its source at snapshot time...
    assert snapshot.as_dict() == metrics.as_dict()
    # ...and the delta against itself is identically zero.
    zero = metrics.delta(snapshot)
    assert all(getattr(zero, name) == 0 for name in Metrics._INT_FIELDS)
    assert zero.custom == Counter()
    # Mutating the source never leaks into the snapshot (deep custom copy).
    metrics.far_accesses += 1
    metrics.bump("slow_path")
    assert snapshot.far_accesses == values.get("far_accesses", 0)
    assert snapshot.custom.get("slow_path", 0) == custom.get("slow_path", 0)


@given(counter_values, counter_values, custom_values)
@settings(max_examples=50, deadline=None)
def test_delta_roundtrips_every_counter(start, increments, custom_incr):
    metrics = _make(start)
    snapshot = metrics.snapshot()
    for name, amount in increments.items():
        setattr(metrics, name, getattr(metrics, name) + amount)
    for key, amount in custom_incr.items():
        metrics.bump(key, amount)
    delta = metrics.delta(snapshot)
    for name in Metrics._INT_FIELDS:
        assert getattr(delta, name) == increments.get(name, 0)
    # Custom counters delta too, with zero entries suppressed (negative
    # adjustments survive — suppression is exactly-zero only).
    assert delta.custom == Counter(
        {k: v for k, v in custom_incr.items() if v != 0}
    )


@given(counter_values, counter_values, custom_values, custom_values)
@settings(max_examples=50, deadline=None)
def test_merge_and_aggregate_agree(a_values, b_values, a_custom, b_custom):
    a = _make(a_values, a_custom)
    b = _make(b_values, b_custom)
    total = aggregate([a, b])
    merged = a.snapshot()
    merged.merge(b)
    assert total.as_dict() == merged.as_dict()
    for name in Metrics._INT_FIELDS:
        assert getattr(total, name) == a_values.get(name, 0) + b_values.get(
            name, 0
        )
    # Sources are untouched.
    assert a.as_dict() == _make(a_values, a_custom).as_dict()
    assert b.as_dict() == _make(b_values, b_custom).as_dict()


@given(counter_values, custom_values)
@settings(max_examples=50, deadline=None)
def test_reset_and_as_dict(values, custom):
    metrics = _make(values, custom)
    flat = metrics.as_dict()
    assert set(Metrics._INT_FIELDS) <= set(flat)
    for key, value in custom.items():
        assert flat[f"custom.{key}"] == value
    metrics.reset()
    assert all(getattr(metrics, name) == 0 for name in Metrics._INT_FIELDS)
    assert metrics.custom == Counter()
