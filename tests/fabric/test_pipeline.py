"""Unit tests for the submission/completion pipeline: ``Client.submit``,
:class:`FarFuture`, the :class:`CompletionQueue`, QP-depth bounds, fence
ordering, nested batches, and retry interaction with overlap windows."""

import pytest

from repro import Cluster
from repro.fabric import FaultPlan
from repro.fabric.errors import AddressError, ClientDeadError
from repro.fabric.wire import WORD

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


@pytest.fixture
def client(cluster):
    return cluster.client()


class TestSubmit:
    def test_submit_returns_future_with_value(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        client.write_u64(a, 7)
        future = client.submit("read_u64", a)
        assert future.result() == 7

    def test_latency_defers_until_completion(self, cluster, client):
        """Work is counted at submit time; latency is charged at flush."""
        a = cluster.allocator.alloc_words(1)
        future = client.submit("read_u64", a)
        assert client.metrics.far_accesses == 1
        assert not future.done()
        assert client.clock.now_ns == 0
        future.result()
        assert future.done()
        assert client.clock.now_ns == pytest.approx(client.cost_model.far_ns)

    def test_result_completes_window_peers_together(self, cluster, client):
        """Completing one future flushes its whole window, like draining
        a hardware CQ: peers land at the same simulated instant."""
        a = cluster.allocator.alloc_words(4)
        futures = [client.submit("read_u64", a + i * WORD) for i in range(4)]
        futures[0].result()
        assert all(f.done() for f in futures)
        assert len({f.completed_at_ns for f in futures}) == 1

    def test_window_charges_max_plus_issue_slots(self, cluster, client):
        a = cluster.allocator.alloc_words(8)
        model = client.cost_model
        for i in range(8):
            client.submit("write_u64", a + i * WORD, i)
        client.cq.wait_all()
        # One overlapped window (max latency + 7 doorbell slots), plus
        # the near-memory cost of reaping 8 completions from the CQ.
        assert client.clock.now_ns == pytest.approx(
            model.far_ns + 7 * model.issue_ns + model.near_access_ns(8)
        )
        assert client.metrics.far_accesses == 8  # overlap never hides work

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ValueError):
            client.submit("frobnicate", 0)

    def test_failure_is_captured_not_raised_at_submit(self, client):
        future = client.submit("read_u64", 1 << 60)
        error = future.exception()
        assert isinstance(error, AddressError)
        with pytest.raises(AddressError):
            future.result()

    def test_submit_is_eager(self, cluster, client):
        """The store is visible to other clients before the window
        flushes (the simulator executes at submit time; only the
        submitter's latency accounting defers)."""
        a = cluster.allocator.alloc_words(1)
        future = client.submit("write_u64", a, 42)
        other = Cluster.client(cluster, "observer")
        assert other.read_u64(a) == 42
        future.result()


class TestCompletionQueue:
    def test_signaled_completions_land_in_cq(self, cluster, client):
        a = cluster.allocator.alloc_words(2)
        f1 = client.submit("read_u64", a)
        f2 = client.submit("read_u64", a + WORD)
        assert client.cq.outstanding() == 2
        assert client.cq.ready() == 0
        client.fence()
        assert client.cq.outstanding() == 0
        assert client.cq.ready() == 2
        assert client.cq.poll() == [f1, f2]
        assert client.cq.ready() == 0

    def test_unsignaled_submissions_skip_the_cq(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        future = client.submit("read_u64", a, signaled=False)
        client.fence()
        assert client.cq.ready() == 0
        assert future.done()

    def test_direct_reap_consumes_the_completion(self, cluster, client):
        """A future whose result is taken in hand never shows up in a
        later poll (no double delivery)."""
        a = cluster.allocator.alloc_words(2)
        f1 = client.submit("read_u64", a)
        f2 = client.submit("read_u64", a + WORD)
        f1.result()  # flushes the window, reaps f1 inline
        assert client.cq.poll() == [f2]

    def test_wait_all_flushes_and_reaps(self, cluster, client):
        a = cluster.allocator.alloc_words(4)
        futures = [client.submit("read_u64", a + i * WORD) for i in range(4)]
        reaped = client.cq.wait_all()
        assert reaped == futures
        assert client.cq.outstanding() == 0

    def test_poll_costs_near_memory_only(self, cluster, client):
        a = cluster.allocator.alloc_words(2)
        client.submit("read_u64", a)
        client.submit("read_u64", a + WORD)
        client.fence()
        far_before = client.metrics.far_accesses
        near_before = client.metrics.near_accesses
        client.cq.poll()
        assert client.metrics.far_accesses == far_before
        assert client.metrics.near_accesses == near_before + 2

    def test_sync_shims_never_pollute_the_cq(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        client.write_u64(a, 1)
        client.read_u64(a)
        client.cas(a, 1, 2)
        assert client.cq.ready() == 0


class TestQpDepth:
    def test_qp_depth_validated(self, cluster):
        with pytest.raises(ValueError):
            cluster.client(qp_depth=0)

    def test_window_auto_flushes_at_qp_depth(self, cluster):
        c = cluster.client(qp_depth=4)
        a = cluster.allocator.alloc_words(8)
        futures = [c.submit("read_u64", a + i * WORD) for i in range(4)]
        # The fourth submission hit the depth bound: stall + flush.
        assert all(f.done() for f in futures)
        assert c.cq.outstanding() == 0
        assert c.metrics.pipeline_stalls == 1

    def test_depth_one_degenerates_to_serial(self, cluster):
        c = cluster.client(qp_depth=1)
        a = cluster.allocator.alloc_words(4)
        for i in range(4):
            c.submit("read_u64", a + i * WORD)
        assert c.clock.now_ns == pytest.approx(4 * c.cost_model.far_ns)

    def test_batch_scope_pins_window_past_qp_depth(self, cluster):
        c = cluster.client(qp_depth=2)
        a = cluster.allocator.alloc_words(8)
        model = c.cost_model
        with c.batch():
            for i in range(8):
                c.submit("write_u64", a + i * WORD, i, signaled=False)
        assert c.metrics.pipeline_stalls == 0
        assert c.clock.now_ns == pytest.approx(model.far_ns + 7 * model.issue_ns)


class TestPipelineMetrics:
    def test_depth_and_overlap_counters(self, cluster, client):
        a = cluster.allocator.alloc_words(8)
        model = client.cost_model
        for i in range(8):
            client.submit("read_u64", a + i * WORD, signaled=False)
        client.fence()
        delta = client.metrics
        assert delta.pipeline_ops == 8
        assert delta.pipeline_flushes == 1
        assert delta.avg_pipeline_depth() == pytest.approx(8.0)
        charged = model.far_ns + 7 * model.issue_ns
        serial = 8 * model.far_ns
        assert delta.pipeline_charged_ns == int(charged)
        assert delta.overlap_saved_ns == int(serial - charged)
        assert delta.overlap_efficiency() == pytest.approx(
            (serial - charged) / serial
        )

    def test_serial_shims_report_zero_overlap(self, cluster, client):
        a = cluster.allocator.alloc_words(4)
        for i in range(4):
            client.read_u64(a + i * WORD)
        assert client.metrics.avg_pipeline_depth() == pytest.approx(1.0)
        assert client.metrics.overlap_saved_ns == 0
        assert client.metrics.overlap_efficiency() == 0.0


class TestFenceOrdering:
    def test_fence_completes_outstanding_submissions(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        future = client.submit("write_u64", a, 9)
        assert not future.done()
        client.fence()
        assert future.done()
        assert client.metrics.custom["fences"] == 1

    def test_fence_orders_submission_groups(self, cluster, client):
        """Ops separated by a fence occupy separate windows: two full
        round trips, and completion times observe the fence order."""
        a = cluster.allocator.alloc_words(2)
        model = client.cost_model
        first = client.submit("write_u64", a, 1)
        client.fence()
        second = client.submit("write_u64", a + WORD, 2)
        client.fence()
        assert client.clock.now_ns == pytest.approx(2 * model.far_ns)
        assert first.completed_at_ns < second.completed_at_ns

    def test_fence_on_empty_window_is_free(self, client):
        client.fence()
        assert client.clock.now_ns == 0
        assert client.metrics.pipeline_flushes == 0


class TestNestedBatch:
    def test_nested_batches_flatten_to_one_window(self, cluster, client):
        a = cluster.allocator.alloc_words(4)
        model = client.cost_model
        with client.batch():
            client.write_u64(a, 0)
            with client.batch():
                client.write_u64(a + WORD, 1)
                with client.batch():
                    client.write_u64(a + 2 * WORD, 2)
            client.write_u64(a + 3 * WORD, 3)
        # One flat window of four ops, flushed once at the outermost exit.
        assert client.metrics.pipeline_flushes == 1
        assert client.metrics.avg_pipeline_depth() == pytest.approx(4.0)
        assert client.clock.now_ns == pytest.approx(
            model.far_ns + 3 * model.issue_ns
        )

    def test_inner_exit_does_not_flush(self, cluster, client):
        a = cluster.allocator.alloc_words(2)
        with client.batch():
            with client.batch():
                future = client.submit("read_u64", a)
            assert not future.done()  # inner scope exit deferred
            client.submit("read_u64", a + WORD, signaled=False)
        assert future.done()

    def test_values_stay_eager_inside_nested_batch(self, cluster, client):
        a = cluster.allocator.alloc_words(1)
        client.write_u64(a, 5)
        with client.batch():
            with client.batch():
                assert client.read_u64(a) == 5  # value now, latency later
            assert client.faa(a, 1) == 5
        assert client.read_u64(a) == 6


class TestRetryOverlap:
    def test_backoff_folds_into_the_window(self, cluster):
        """Regression: a retried op inside a ``batch()`` window
        contributes its whole recovery time (timeout + backoff + retry)
        as *its* charge — overlapped with its peers via max(), not
        serialized on top of the window."""
        a = cluster.allocator.alloc_words(8)
        cluster.inject_faults(seed=3, plan=FaultPlan().timeout_at(0))
        c = cluster.client()
        model = c.cost_model
        with c.batch():
            futures = [c.submit("read_u64", a + i * WORD) for i in range(8)]
        assert c.metrics.retries == 1
        charges = [f.charge_ns for f in futures]
        # The faulted op's charge carries the recovery; peers stay clean.
        assert max(charges) > model.timeout_ns
        assert sorted(charges)[-2] == pytest.approx(model.far_ns)
        # Wall-clock is the overlapped window, not the serial sum.
        expected = max(charges) + (len(charges) - 1) * model.issue_ns
        assert c.clock.now_ns == pytest.approx(expected)
        assert c.clock.now_ns < sum(charges)

    def test_clean_peers_unaffected_by_neighbor_retry(self, cluster):
        a = cluster.allocator.alloc_words(4)
        cluster.inject_faults(seed=3, plan=FaultPlan().timeout_at(1))
        c = cluster.client()
        with c.batch():
            futures = [c.submit("read_u64", a + i * WORD) for i in range(4)]
        values = [f.result() for f in futures]
        assert values == [0, 0, 0, 0]
        assert c.metrics.far_accesses == 4  # retries re-count nothing


class TestCrash:
    def test_crash_fails_outstanding_futures(self, cluster):
        c = cluster.client()
        a = cluster.allocator.alloc_words(2)
        f1 = c.submit("read_u64", a)
        f2 = c.submit("read_u64", a + WORD)
        c.crash()
        assert f1.done() and f2.done()
        with pytest.raises(ClientDeadError):
            f1.result()
        assert isinstance(f2.exception(), ClientDeadError)
        assert c.cq.ready() == 0

    def test_dead_client_rejects_submissions(self, cluster):
        c = cluster.client()
        c.crash()
        with pytest.raises(ClientDeadError):
            c.submit("read_u64", 0)
