"""Semantics tests for every Fig. 1 primitive, against the fabric directly.

Each test mirrors one row of the paper's Figure 1 table; the benchmark
``bench_fig1_primitives.py`` measures their round-trip savings, these
tests pin their meaning.
"""

import pytest

from repro.fabric import Fabric, RangePlacement
from repro.fabric.errors import AddressError
from repro.fabric.wire import WORD, decode_u64, encode_u64

NODE_SIZE = 1 << 20


@pytest.fixture
def fabric():
    return Fabric(RangePlacement(node_count=1, node_size=NODE_SIZE))


def put_word(fabric, addr, value):
    fabric.write_word(addr, value)


class TestIndirectLoads:
    def test_load0(self, fabric):
        put_word(fabric, 0, 1000)
        fabric.write(1000, b"DATA4321")
        assert fabric.load0(0, 8).value == b"DATA4321"

    def test_load1_indexes_the_pointer_array(self, fabric):
        # ad + i selects which pointer; here a table of two pointers.
        put_word(fabric, 0, 1000)
        put_word(fabric, 8, 2000)
        fabric.write(1000, encode_u64(111))
        fabric.write(2000, encode_u64(222))
        assert decode_u64(fabric.load1(0, 0, WORD).value) == 111
        assert decode_u64(fabric.load1(0, 8, WORD).value) == 222

    def test_load2_offsets_the_target(self, fabric):
        # *ad + i: a base pointer plus an element offset (vector indexing).
        put_word(fabric, 0, 3000)
        fabric.write(3000 + 24, encode_u64(777))
        assert decode_u64(fabric.load2(0, 24, WORD).value) == 777

    def test_load0_returns_pointer(self, fabric):
        put_word(fabric, 0, 4096)
        fabric.write(4096, b"\x01" * 8)
        assert fabric.load0(0, 8).pointer == 4096


class TestIndirectStores:
    def test_store0(self, fabric):
        put_word(fabric, 0, 1000)
        fabric.store0(0, b"12345678")
        assert fabric.read(1000, 8).value == b"12345678"

    def test_store1(self, fabric):
        put_word(fabric, 8, 2000)
        fabric.store1(0, 8, encode_u64(5))
        assert fabric.read_word(2000) == 5

    def test_store2(self, fabric):
        put_word(fabric, 0, 3000)
        fabric.store2(0, 16, encode_u64(6))
        assert fabric.read_word(3016) == 6


class TestPointerBumpAtomics:
    def test_faai_returns_data_at_old_pointer_and_bumps(self, fabric):
        put_word(fabric, 0, 1000)  # head pointer
        fabric.write(1000, encode_u64(42))  # item at old head
        result = fabric.faai(0, WORD, WORD)
        assert decode_u64(result.value) == 42
        assert result.pointer == 1000
        assert fabric.read_word(0) == 1008  # pointer advanced

    def test_saai_stores_at_old_pointer_and_bumps(self, fabric):
        put_word(fabric, 0, 2000)  # tail pointer
        result = fabric.saai(0, WORD, encode_u64(99))
        assert result.pointer == 2000
        assert fabric.read_word(2000) == 99
        assert fabric.read_word(0) == 2008

    def test_faai_negative_delta(self, fabric):
        put_word(fabric, 0, 1008)
        fabric.write(1008, encode_u64(1))
        fabric.faai(0, -WORD, WORD)
        assert fabric.read_word(0) == 1000

    def test_fsaai_fetches_swaps_and_bumps(self, fabric):
        # The DESIGN.md extension: faai + saai fused.
        put_word(fabric, 0, 1000)
        fabric.write(1000, encode_u64(42))
        sentinel = encode_u64((1 << 64) - 1)
        result = fabric.fsaai(0, WORD, sentinel)
        assert decode_u64(result.value) == 42  # fetched the old content
        assert fabric.read(1000, WORD).value == sentinel  # swapped in place
        assert fabric.read_word(0) == 1008  # pointer bumped


class TestIndirectAdds:
    def test_add0(self, fabric):
        put_word(fabric, 0, 1000)
        put_word(fabric, 1000, 10)
        result = fabric.add0(0, 5)
        assert result.value == 10  # old value at the target
        assert fabric.read_word(1000) == 15

    def test_add1(self, fabric):
        put_word(fabric, 8, 2000)
        put_word(fabric, 2000, 1)
        fabric.add1(0, 2, 8)
        assert fabric.read_word(2000) == 3

    def test_add2_is_the_histogram_increment(self, fabric):
        # Section 6: sample as offset into the vector, one far access.
        put_word(fabric, 0, 4096)  # histogram base pointer
        fabric.add2(0, 1, 3 * WORD)  # histogram[3] += 1
        fabric.add2(0, 1, 3 * WORD)
        assert fabric.read_word(4096 + 3 * WORD) == 2


class TestScatterGather:
    def test_rscatter_splits_a_far_range(self, fabric):
        fabric.write(512, b"AABBBCC")
        buffers = fabric.rscatter(512, [2, 3, 2]).value
        assert buffers == [b"AA", b"BBB", b"CC"]

    def test_rscatter_rejects_negative_lengths(self, fabric):
        with pytest.raises(AddressError):
            fabric.rscatter(0, [4, -1])

    def test_rgather_concatenates_far_buffers(self, fabric):
        fabric.write(100, b"xx")
        fabric.write(300, b"yyy")
        assert fabric.rgather([(100, 2), (300, 3)]).value == b"xxyyy"

    def test_wscatter_distributes_local_buffer(self, fabric):
        fabric.wscatter([(100, 2), (300, 3)], b"ABCDE")
        assert fabric.read(100, 2).value == b"AB"
        assert fabric.read(300, 3).value == b"CDE"

    def test_wscatter_length_mismatch(self, fabric):
        with pytest.raises(AddressError):
            fabric.wscatter([(100, 2)], b"ABC")

    def test_wgather_concatenates_local_buffers(self, fabric):
        fabric.wgather(700, [b"12", b"345"])
        assert fabric.read(700, 5).value == b"12345"

    def test_gather_is_one_operation_many_segments(self, fabric):
        result = fabric.rgather([(0, 8), (4096, 8), (8192, 8)])
        assert result.segments == 3
