"""Unit tests for the operation profiler."""

import pytest

from repro import Cluster
from repro.fabric.profile import Profiler

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestProfiler:
    def test_attributes_costs_to_labels(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(4)
        profiler = Profiler()
        with profiler.measure(client, "writes"):
            client.write_u64(addr, 1)
            client.write_u64(addr + 8, 2)
        with profiler.measure(client, "reads"):
            client.read_u64(addr)
        assert profiler.row("writes").far_accesses == 2
        assert profiler.row("reads").far_accesses == 1
        assert profiler.total_far_accesses() == 3

    def test_per_op_averages(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        profiler = Profiler()
        for _ in range(4):
            with profiler.measure(client, "op"):
                client.read_u64(addr)
        row = profiler.row("op")
        assert row.count == 4
        assert row.far_per_op() == 1.0
        assert row.ns_per_op() == client.cost_model.far_ns

    def test_exception_still_recorded(self, cluster):
        client = cluster.client()
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.measure(client, "fails"):
                client.read_u64(cluster.allocator.alloc_words(1))
                raise RuntimeError("boom")
        assert profiler.row("fails").far_accesses == 1

    def test_data_structure_profile(self, cluster):
        tree = cluster.ht_tree(bucket_count=1024)
        client = cluster.client()
        profiler = Profiler()
        with profiler.measure(client, "put"):
            tree.put(client, 1, 10)
        with profiler.measure(client, "get"):
            tree.get(client, 1)
        assert profiler.row("get").far_accesses == 1
        assert profiler.row("put").far_accesses >= 2

    def test_notifications_counted(self, cluster):
        # Deliveries land in the watcher's metrics as they arrive, so the
        # measured window must span the arrival, not just the poll.
        watcher = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(watcher, addr, 8)
        profiler = Profiler()
        with profiler.measure(watcher, "wait"):
            cluster.client().write_u64(addr, 1)
            watcher.poll_notifications()
        assert profiler.row("wait").notifications == 1

    def test_render_and_reset(self, cluster):
        client = cluster.client()
        profiler = Profiler()
        with profiler.measure(client, "noop"):
            pass
        text = profiler.render()
        assert "noop" in text and "far/op" in text
        profiler.reset()
        assert profiler.rows == {}

    def test_empty_row(self):
        row = Profiler().row("ghost")
        assert row.far_per_op() == 0.0
        assert row.ns_per_op() == 0.0
