"""Tests for client-driven replication across node fault domains."""

import pytest

from repro import Cluster
from repro.fabric import BreakerPolicy, FaultPlan, RetryPolicy, frame_size
from repro.fabric.errors import (
    AddressError,
    FarCorruptionError,
    FarTimeoutError,
    NodeUnavailableError,
    StaleEpochError,
)
from repro.fabric.replication import ReplicatedRegion

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=3, node_size=NODE_SIZE)


@pytest.fixture
def region(cluster):
    return ReplicatedRegion.create(cluster.allocator, 256, copies=2)


@pytest.fixture
def framed(cluster):
    return ReplicatedRegion.create_framed(
        cluster.allocator, block_payload=64, block_count=8, copies=2
    )


class TestPlacement:
    def test_replicas_on_distinct_nodes(self, cluster, region):
        nodes = {cluster.fabric.node_of(replica) for replica in region.replicas}
        assert len(nodes) == 2

    def test_too_many_copies_rejected(self, cluster):
        with pytest.raises(ValueError):
            ReplicatedRegion.create(cluster.allocator, 64, copies=4)

    def test_single_copy_rejected(self, cluster):
        with pytest.raises(ValueError):
            ReplicatedRegion.create(cluster.allocator, 64, copies=1)


class TestIO:
    def test_roundtrip(self, cluster, region):
        c = cluster.client()
        region.write(c, 0, b"replicated!")
        assert region.read(c, 0, 11) == b"replicated!"

    def test_write_reaches_every_replica(self, cluster, region):
        c = cluster.client()
        region.write(c, 8, b"copy")
        for replica in region.replicas:
            assert cluster.fabric.read(replica + 8, 4).value == b"copy"

    def test_write_is_one_far_access(self, cluster, region):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        region.write_word(c, 0, 42)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_bounds(self, cluster, region):
        c = cluster.client()
        with pytest.raises(AddressError):
            region.read(c, 250, 16)
        with pytest.raises(AddressError):
            region.write(c, -1, b"x")


class TestFailover:
    def test_read_survives_primary_failure(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 7)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(primary_node)
        assert region.read_word(c, 0) == 7  # served by the secondary
        assert region.stats.failovers == 1
        assert region.live_replicas() == 1

    def test_failover_costs_one_extra_access(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 7)
        cluster.fabric.fail_node(cluster.fabric.node_of(region.replicas[0]))
        snapshot = c.metrics.snapshot()
        region.read_word(c, 0)
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_all_replicas_down_raises(self, cluster, region):
        c = cluster.client()
        for replica in region.replicas:
            cluster.fabric.fail_node(cluster.fabric.node_of(replica))
        with pytest.raises(NodeUnavailableError):
            region.read_word(c, 0)

    def test_primary_failed_mid_workload(self, cluster, region):
        """The primary dies *between* reads: earlier reads hit it, later
        reads fail over — and the stats ledger separates the two."""
        c = cluster.client()
        region.write_word(c, 0, 11)
        assert region.read_word(c, 0) == 11  # primary serving
        assert region.stats.failovers == 0
        cluster.fabric.fail_node(cluster.fabric.node_of(region.replicas[0]))
        for _ in range(3):
            assert region.read_word(c, 0) == 11  # secondary serving
        assert region.stats.failovers == 3
        assert region.stats.reads == 4

    def test_write_raises_when_any_replica_down(self, cluster, region):
        # Breaker off: both failing iterations anchor at replica 0's node,
        # and 8 consecutive failures there would trip it — this test is
        # about fail-stop write semantics, not breaker behaviour.
        c = cluster.client(breaker_policy=None)
        for index in range(len(region.replicas)):
            node = cluster.fabric.node_of(region.replicas[index])
            cluster.fabric.fail_node(node)
            with pytest.raises(NodeUnavailableError):
                region.write_word(c, 0, 1)
            cluster.fabric.repair_node(node)
        region.write_word(c, 0, 1)  # all repaired: writes flow again

    def test_failover_accounting_all_down(self, cluster, region):
        c = cluster.client()
        for replica in region.replicas:
            cluster.fabric.fail_node(cluster.fabric.node_of(replica))
        with pytest.raises(NodeUnavailableError):
            region.read_word(c, 0)
        # Every replica was tried and charged as a failover.
        assert region.stats.failovers == len(region.replicas)
        assert region.stats.timeout_failovers == 0

    def test_resync_after_repair(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 1)
        dead = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(dead)
        # A write while a replica is down surfaces the outage; real
        # deployments buffer or re-provision — here we repair and resync.
        with pytest.raises(NodeUnavailableError):
            region.write_word(c, 0, 2)
        cluster.fabric.repair_node(dead)
        region.resync(c, repaired_index=0)
        assert cluster.fabric.read_word(region.replicas[0]) == cluster.fabric.read_word(
            region.replicas[1]
        )


class TestFramedBlocks:
    def test_create_validates(self, cluster):
        with pytest.raises(ValueError):
            ReplicatedRegion.create_framed(
                cluster.allocator, block_payload=0, block_count=4
            )
        with pytest.raises(ValueError):
            ReplicatedRegion.create_framed(
                cluster.allocator, block_payload=64, block_count=0
            )

    def test_fresh_region_verifies(self, cluster, framed):
        """Every block starts as a valid version-0 frame of zeros."""
        c = cluster.client()
        for index in range(framed.block_count):
            assert framed.read_block(c, index) == b"\x00" * 64
            assert framed.block_version(index) == 0

    def test_roundtrip_and_version_bump(self, cluster, framed):
        c = cluster.client()
        framed.write_block(c, 3, b"v" * 64)
        framed.write_block(c, 3, b"w" * 64)
        assert framed.read_block(c, 3) == b"w" * 64
        assert framed.block_version(3) == 2

    def test_write_is_one_far_access(self, cluster, framed):
        c = cluster.client()
        snap = c.metrics.snapshot()
        framed.write_block(c, 0, b"x" * 64)
        # Unregistered: no fence read, one wscatter to both replicas.
        assert c.metrics.delta(snap).far_accesses == 1

    def test_payload_length_enforced(self, cluster, framed):
        c = cluster.client()
        with pytest.raises(ValueError):
            framed.write_block(c, 0, b"short")

    def test_block_index_bounds(self, cluster, framed):
        c = cluster.client()
        with pytest.raises(AddressError):
            framed.read_block(c, 8)
        with pytest.raises(AddressError):
            framed.write_block(c, -1, b"x" * 64)

    def test_block_io_needs_framed_region(self, cluster, region):
        c = cluster.client()
        with pytest.raises(ValueError):
            region.read_block(c, 0)

    def test_corrupt_primary_heals_from_secondary(self, cluster, framed):
        c = cluster.client()
        framed.write_block(c, 2, b"k" * 64)
        offset = 2 * frame_size(64)
        location = cluster.fabric.locate(framed.replicas[0] + offset)
        cluster.fabric.nodes[location.node].corrupt_bit(location.offset + 5, 1)
        snap = c.metrics.snapshot()
        assert framed.read_block(c, 2) == b"k" * 64
        delta = c.metrics.delta(snap)
        assert delta.far_accesses == 2  # the verify-miss cost one re-read
        assert delta.verify_misses == 1
        assert framed.stats.verify_misses == 1

    def test_all_copies_corrupt_raises_never_returns(self, cluster, framed):
        c = cluster.client()
        framed.write_block(c, 1, b"q" * 64)
        offset = 1 * frame_size(64)
        for replica in framed.replicas:
            location = cluster.fabric.locate(replica + offset)
            cluster.fabric.nodes[location.node].corrupt_bit(location.offset, 7)
        with pytest.raises(FarCorruptionError):
            framed.read_block(c, 1)

    def test_dead_primary_fails_over(self, cluster, framed):
        c = cluster.client()
        framed.write_block(c, 0, b"d" * 64)
        cluster.fabric.fail_node(cluster.fabric.node_of(framed.replicas[0]))
        assert framed.read_block(c, 0) == b"d" * 64
        assert framed.stats.failovers == 1

    def test_torn_replicated_write_never_serves_garbage(self, cluster, framed):
        """A torn wscatter rips replica 0's frame; the reader detects it
        and serves the intact old value from replica 1 — the failed write
        is cleanly not-applied, never half-applied."""
        c = cluster.client(retry_policy=None, breaker_policy=None)
        framed.write_block(c, 0, b"old!" * 16)
        cluster.inject_faults(seed=6, plan=FaultPlan().torn_at(0))
        with pytest.raises(FarTimeoutError):
            framed.write_block(c, 0, b"new!" * 16)
        result = framed.read_block(c, 0)
        assert result in (b"old!" * 16, b"new!" * 16)  # never a mix
        assert framed.block_version(0) == 1  # the failed write left no stamp


class TestEpochFencing:
    """Fence behaviour without a live coordinator: the region only needs
    the epoch word. (Full repair protocol: tests/recovery/test_repair.py.)"""

    def _register(self, cluster, region, client):
        epoch_addr = cluster.allocator.alloc_words(1)
        client.write_u64(epoch_addr, 1)
        region.epoch_addr = epoch_addr
        region.epoch = 1
        region.region_id = 0
        return epoch_addr

    def test_fenced_write_costs_one_extra_access(self, cluster, framed):
        c = cluster.client()
        self._register(cluster, framed, c)
        snap = c.metrics.snapshot()
        framed.write_block(c, 0, b"f" * 64)
        assert c.metrics.delta(snap).far_accesses == 2  # fence read + wscatter
        assert framed.stats.fence_checks == 1

    def test_stale_epoch_rejected_before_any_write(self, cluster, framed):
        c = cluster.client()
        epoch_addr = self._register(cluster, framed, c)
        framed.write_block(c, 1, b"a" * 64)
        c.write_u64(epoch_addr, 2)  # the world moves on
        with pytest.raises(StaleEpochError) as excinfo:
            framed.write_block(c, 1, b"b" * 64)
        assert excinfo.value.held == 1
        assert excinfo.value.current == 2
        assert framed.read_block(c, 1) == b"a" * 64  # nothing was written
        assert framed.stats.fence_rejects == 1
        assert c.metrics.fence_rejects == 1

    def test_plain_write_is_fenced_too(self, cluster, region):
        c = cluster.client()
        epoch_addr = self._register(cluster, region, c)
        region.write_word(c, 0, 1)
        c.write_u64(epoch_addr, 5)
        with pytest.raises(StaleEpochError):
            region.write_word(c, 0, 2)

    def test_reads_are_never_fenced(self, cluster, framed):
        c = cluster.client()
        epoch_addr = self._register(cluster, framed, c)
        framed.write_block(c, 0, b"r" * 64)
        c.write_u64(epoch_addr, 9)
        # Reads serve stale-epoch holders fine: fencing protects writes.
        assert framed.read_block(c, 0) == b"r" * 64

    def test_unregistered_region_pays_nothing(self, cluster, framed):
        c = cluster.client()
        framed.write_block(c, 0, b"u" * 64)
        assert framed.stats.fence_checks == 0

    def test_clone_view_is_independent(self, cluster, framed):
        c = cluster.client()
        self._register(cluster, framed, c)
        framed.write_block(c, 0, b"1" * 64)
        view = framed.clone_view()
        assert view.replicas == framed.replicas
        assert view.epoch == framed.epoch
        assert view.block_version(0) == 1
        view.replicas[0] = 0xDEAD  # mutating the clone...
        assert framed.replicas[0] != 0xDEAD  # ...never touches the original
        view.stats.writes += 1
        assert framed.stats.writes == 1


class TestTimeoutFailover:
    """Degradation under transient faults, not just fail-stop."""

    def test_read_fails_over_on_timeout(self, cluster, region):
        c = cluster.client(retry_policy=RetryPolicy(max_attempts=2))
        region.write_word(c, 0, 21)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.inject_faults(
            seed=3, plan=FaultPlan().random_timeouts(1.0, node=primary_node)
        )
        assert region.read_word(c, 0) == 21  # secondary serves
        assert region.stats.failovers == 1
        assert region.stats.timeout_failovers == 1
        assert c.metrics.timeouts == 2  # both attempts at the primary

    def test_read_fails_over_on_open_breaker(self, cluster, region):
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_ns=1e12),
        )
        region.write_word(c, 0, 33)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.inject_faults(
            seed=3, plan=FaultPlan().random_timeouts(1.0, node=primary_node)
        )
        assert region.read_word(c, 0) == 33  # trips the primary's breaker
        assert c.metrics.breaker_trips == 1
        # Subsequent reads fail over instantly via the open breaker: no
        # timeout waits, still correct data.
        timeouts_before = c.metrics.timeouts
        assert region.read_word(c, 0) == 33
        assert c.metrics.timeouts == timeouts_before
        assert c.metrics.breaker_rejections >= 1

    def test_all_replicas_flaky_raises_timeout(self, cluster, region):
        c = cluster.client(retry_policy=RetryPolicy(max_attempts=2))
        region.write_word(c, 0, 1)
        cluster.inject_faults(seed=3, plan=FaultPlan().random_timeouts(1.0))
        with pytest.raises(FarTimeoutError):
            region.read_word(c, 0)
        assert region.stats.timeout_failovers == len(region.replicas)
