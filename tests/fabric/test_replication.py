"""Tests for client-driven replication across node fault domains."""

import pytest

from repro import Cluster
from repro.fabric import BreakerPolicy, FaultPlan, RetryPolicy
from repro.fabric.errors import (
    AddressError,
    FarTimeoutError,
    NodeUnavailableError,
)
from repro.fabric.replication import ReplicatedRegion

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=3, node_size=NODE_SIZE)


@pytest.fixture
def region(cluster):
    return ReplicatedRegion.create(cluster.allocator, 256, copies=2)


class TestPlacement:
    def test_replicas_on_distinct_nodes(self, cluster, region):
        nodes = {cluster.fabric.node_of(replica) for replica in region.replicas}
        assert len(nodes) == 2

    def test_too_many_copies_rejected(self, cluster):
        with pytest.raises(ValueError):
            ReplicatedRegion.create(cluster.allocator, 64, copies=4)

    def test_single_copy_rejected(self, cluster):
        with pytest.raises(ValueError):
            ReplicatedRegion.create(cluster.allocator, 64, copies=1)


class TestIO:
    def test_roundtrip(self, cluster, region):
        c = cluster.client()
        region.write(c, 0, b"replicated!")
        assert region.read(c, 0, 11) == b"replicated!"

    def test_write_reaches_every_replica(self, cluster, region):
        c = cluster.client()
        region.write(c, 8, b"copy")
        for replica in region.replicas:
            assert cluster.fabric.read(replica + 8, 4).value == b"copy"

    def test_write_is_one_far_access(self, cluster, region):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        region.write_word(c, 0, 42)
        assert c.metrics.delta(snapshot).far_accesses == 1

    def test_bounds(self, cluster, region):
        c = cluster.client()
        with pytest.raises(AddressError):
            region.read(c, 250, 16)
        with pytest.raises(AddressError):
            region.write(c, -1, b"x")


class TestFailover:
    def test_read_survives_primary_failure(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 7)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(primary_node)
        assert region.read_word(c, 0) == 7  # served by the secondary
        assert region.stats.failovers == 1
        assert region.live_replicas() == 1

    def test_failover_costs_one_extra_access(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 7)
        cluster.fabric.fail_node(cluster.fabric.node_of(region.replicas[0]))
        snapshot = c.metrics.snapshot()
        region.read_word(c, 0)
        assert c.metrics.delta(snapshot).far_accesses == 2

    def test_all_replicas_down_raises(self, cluster, region):
        c = cluster.client()
        for replica in region.replicas:
            cluster.fabric.fail_node(cluster.fabric.node_of(replica))
        with pytest.raises(NodeUnavailableError):
            region.read_word(c, 0)

    def test_primary_failed_mid_workload(self, cluster, region):
        """The primary dies *between* reads: earlier reads hit it, later
        reads fail over — and the stats ledger separates the two."""
        c = cluster.client()
        region.write_word(c, 0, 11)
        assert region.read_word(c, 0) == 11  # primary serving
        assert region.stats.failovers == 0
        cluster.fabric.fail_node(cluster.fabric.node_of(region.replicas[0]))
        for _ in range(3):
            assert region.read_word(c, 0) == 11  # secondary serving
        assert region.stats.failovers == 3
        assert region.stats.reads == 4

    def test_write_raises_when_any_replica_down(self, cluster, region):
        # Breaker off: both failing iterations anchor at replica 0's node,
        # and 8 consecutive failures there would trip it — this test is
        # about fail-stop write semantics, not breaker behaviour.
        c = cluster.client(breaker_policy=None)
        for index in range(len(region.replicas)):
            node = cluster.fabric.node_of(region.replicas[index])
            cluster.fabric.fail_node(node)
            with pytest.raises(NodeUnavailableError):
                region.write_word(c, 0, 1)
            cluster.fabric.repair_node(node)
        region.write_word(c, 0, 1)  # all repaired: writes flow again

    def test_failover_accounting_all_down(self, cluster, region):
        c = cluster.client()
        for replica in region.replicas:
            cluster.fabric.fail_node(cluster.fabric.node_of(replica))
        with pytest.raises(NodeUnavailableError):
            region.read_word(c, 0)
        # Every replica was tried and charged as a failover.
        assert region.stats.failovers == len(region.replicas)
        assert region.stats.timeout_failovers == 0

    def test_resync_after_repair(self, cluster, region):
        c = cluster.client()
        region.write_word(c, 0, 1)
        dead = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(dead)
        # A write while a replica is down surfaces the outage; real
        # deployments buffer or re-provision — here we repair and resync.
        with pytest.raises(NodeUnavailableError):
            region.write_word(c, 0, 2)
        cluster.fabric.repair_node(dead)
        region.resync(c, repaired_index=0)
        assert cluster.fabric.read_word(region.replicas[0]) == cluster.fabric.read_word(
            region.replicas[1]
        )


class TestTimeoutFailover:
    """Degradation under transient faults, not just fail-stop."""

    def test_read_fails_over_on_timeout(self, cluster, region):
        c = cluster.client(retry_policy=RetryPolicy(max_attempts=2))
        region.write_word(c, 0, 21)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.inject_faults(
            seed=3, plan=FaultPlan().random_timeouts(1.0, node=primary_node)
        )
        assert region.read_word(c, 0) == 21  # secondary serves
        assert region.stats.failovers == 1
        assert region.stats.timeout_failovers == 1
        assert c.metrics.timeouts == 2  # both attempts at the primary

    def test_read_fails_over_on_open_breaker(self, cluster, region):
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_ns=1e12),
        )
        region.write_word(c, 0, 33)
        primary_node = cluster.fabric.node_of(region.replicas[0])
        cluster.inject_faults(
            seed=3, plan=FaultPlan().random_timeouts(1.0, node=primary_node)
        )
        assert region.read_word(c, 0) == 33  # trips the primary's breaker
        assert c.metrics.breaker_trips == 1
        # Subsequent reads fail over instantly via the open breaker: no
        # timeout waits, still correct data.
        timeouts_before = c.metrics.timeouts
        assert region.read_word(c, 0) == 33
        assert c.metrics.timeouts == timeouts_before
        assert c.metrics.breaker_rejections >= 1

    def test_all_replicas_flaky_raises_timeout(self, cluster, region):
        c = cluster.client(retry_policy=RetryPolicy(max_attempts=2))
        region.write_word(c, 0, 1)
        cluster.inject_faults(seed=3, plan=FaultPlan().random_timeouts(1.0))
        with pytest.raises(FarTimeoutError):
            region.read_word(c, 0)
        assert region.stats.timeout_failovers == len(region.replicas)
