"""Unit tests for the client retry/backoff layer and circuit breakers."""

import pytest

from repro import Cluster
from repro.fabric import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    FarTimeoutError,
    FaultPlan,
    NodeUnavailableError,
    RetryPolicy,
)

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            base_backoff_ns=1000, multiplier=2.0, max_backoff_ns=1e9, jitter=0.0
        )
        assert policy.backoff_ns(1) == 1000
        assert policy.backoff_ns(2) == 2000
        assert policy.backoff_ns(3) == 4000

    def test_backoff_caps(self):
        policy = RetryPolicy(
            base_backoff_ns=1000, multiplier=2.0, max_backoff_ns=3000, jitter=0.0
        )
        assert policy.backoff_ns(10) == 3000

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_ns=1000, jitter=0.5)
        values = {policy.backoff_ns(1, token) for token in range(50)}
        assert len(values) > 25  # jitter actually spreads
        for token in range(50):
            a = policy.backoff_ns(1, token)
            assert a == policy.backoff_ns(1, token)  # replayable
            assert 500.0 <= a <= 1000.0  # within [span*(1-jitter), span]

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ns(0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        b = CircuitBreaker(0, BreakerPolicy(failure_threshold=3, cooldown_ns=100))
        assert b.allow(0)
        assert not b.record_failure(0)
        assert not b.record_failure(0)
        assert b.record_failure(0)  # third consecutive failure trips
        assert b.state is BreakerState.OPEN
        assert not b.allow(50)
        assert b.rejections == 1

    def test_half_open_probe_closes_on_success(self):
        b = CircuitBreaker(0, BreakerPolicy(failure_threshold=1, cooldown_ns=100))
        b.record_failure(0)
        assert not b.allow(99)
        assert b.allow(100)  # cooldown elapsed: half-open probe admitted
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        b = CircuitBreaker(0, BreakerPolicy(failure_threshold=1, cooldown_ns=100))
        b.record_failure(0)
        assert b.allow(100)
        b.record_failure(150)
        assert b.state is BreakerState.OPEN
        assert not b.allow(200)  # cooldown restarts from the failed probe
        assert b.allow(250)

    def test_success_clears_streak(self):
        b = CircuitBreaker(0, BreakerPolicy(failure_threshold=3))
        b.record_failure(0)
        b.record_failure(0)
        b.record_success()
        assert not b.record_failure(0)  # streak restarted


class TestClientRetries:
    def test_transparent_retry_succeeds(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.fabric.write_word(addr, 5)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(0))
        c = cluster.client()
        assert c.read_u64(addr) == 5  # first attempt dropped, retry lands
        assert c.metrics.timeouts == 1
        assert c.metrics.retries == 1
        assert c.metrics.far_accesses == 1  # only completed work counts
        assert c.metrics.backoff_ns > 0

    def test_retry_charges_timeout_and_backoff_time(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(0))
        c = cluster.client()
        c.read_u64(addr)
        expected_min = (
            c.cost_model.timeout_ns
            + c.retry_policy.backoff_ns(1, 0) * (1 - c.retry_policy.jitter)
            + c.cost_model.far_ns
        )
        assert c.clock.now_ns >= expected_min

    def test_retries_exhausted_raises_typed(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        c = cluster.client(breaker_policy=None)
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)
        assert c.metrics.timeouts == c.retry_policy.max_attempts
        assert c.metrics.retries == c.retry_policy.max_attempts - 1
        assert c.metrics.far_accesses == 0

    def test_retry_preserves_nonidempotent_atomics(self, cluster):
        """A retried faa applies exactly once (request-drop injection)."""
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(0))
        c = cluster.client()
        assert c.faa(addr, 10) == 0
        cluster.fabric.set_fault_injector(None)
        assert c.read_u64(addr) == 10  # bumped once, not once per attempt

    def test_retry_disabled_surfaces_first_fault(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(0))
        c = cluster.client(retry_policy=None, breaker_policy=None)
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)
        assert c.read_u64(addr) == 0  # next op is fine
        assert c.metrics.retries == 0

    def test_time_budget_stops_retries(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=50, budget_ns=25_000.0),
            breaker_policy=None,
        )
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)
        # 25 us budget holds 2 timeouts (10 us each) + backoffs, not 50.
        assert c.metrics.timeouts <= 3

    def test_retries_node_unavailable_then_raises(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.fabric.fail_node(0)
        c = cluster.client(breaker_policy=None)
        with pytest.raises(NodeUnavailableError):
            c.read_u64(addr)
        assert c.metrics.far_accesses == 0

    def test_fence_and_batch_unaffected(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().timeout_at(1))
        c = cluster.client()
        with c.batch():
            c.write_u64(addr, 1)
            c.write_u64(addr + 8, 2)  # dropped once, retried inside the batch
        assert cluster.fabric.read_word(addr + 8) == 2


class TestClientBreaker:
    def _hammer(self, client, addr, times):
        failures = 0
        for _ in range(times):
            try:
                client.read_u64(addr)
            except (FarTimeoutError, NodeUnavailableError):
                failures += 1
        return failures

    def test_breaker_trips_and_fails_fast(self, cluster):
        addr = cluster.allocator.alloc(64)
        cluster.inject_faults(seed=1, plan=FaultPlan().random_timeouts(1.0))
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=4, cooldown_ns=1e12),
        )
        self._hammer(c, addr, 2)  # 4 failed attempts: breaker trips
        assert c.metrics.breaker_trips == 1
        with pytest.raises(CircuitOpenError):
            c.read_u64(addr)
        assert c.metrics.breaker_rejections == 1
        # Fail-fast: the rejected op cost no timeout wait.
        timeouts_before = c.metrics.timeouts
        with pytest.raises(CircuitOpenError):
            c.read_u64(addr)
        assert c.metrics.timeouts == timeouts_before

    def test_breaker_is_per_node(self, cluster):
        node1_base = cluster.fabric.placement.node_size
        addr0 = cluster.allocator.alloc(64)
        cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0, node=0)
        )
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_ns=1e12),
        )
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr0)
        assert c.breakers[0].state is BreakerState.OPEN
        assert c.read_u64(node1_base) == 0  # node 1 unaffected

    def test_breaker_recovers_after_cooldown(self, cluster):
        addr = cluster.allocator.alloc(64)
        injector = cluster.inject_faults(
            seed=1, plan=FaultPlan().random_timeouts(1.0)
        )
        c = cluster.client(
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_ns=5_000.0),
        )
        with pytest.raises(FarTimeoutError):
            c.read_u64(addr)
        injector.enabled = False  # fabric heals while breaker is open
        c.touch_local(100)  # let the cooldown elapse on the sim clock
        assert c.read_u64(addr) == 0  # half-open probe succeeds
        assert c.breakers[0].state is BreakerState.CLOSED

    def test_open_breaker_error_is_node_unavailable(self):
        assert issubclass(CircuitOpenError, NodeUnavailableError)
