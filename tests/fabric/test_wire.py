"""Unit tests for word encoding helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric.wire import (
    U64_MASK,
    WORD,
    align_down,
    align_up,
    decode_u64,
    encode_u64,
    is_word_aligned,
    to_signed,
    wrap_add,
)

u64s = st.integers(min_value=0, max_value=U64_MASK)


class TestEncoding:
    def test_roundtrip_simple(self):
        assert decode_u64(encode_u64(42)) == 42

    def test_encode_is_little_endian(self):
        assert encode_u64(1) == b"\x01" + b"\x00" * 7

    def test_encode_wraps_negative(self):
        assert decode_u64(encode_u64(-1)) == U64_MASK

    def test_encode_wraps_overflow(self):
        assert decode_u64(encode_u64(U64_MASK + 5)) == 4

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            decode_u64(b"\x00" * 7)

    @given(u64s)
    def test_roundtrip_property(self, value):
        assert decode_u64(encode_u64(value)) == value


class TestSigned:
    def test_positive_unchanged(self):
        assert to_signed(7) == 7

    def test_max_negative(self):
        assert to_signed(U64_MASK) == -1

    def test_min_signed(self):
        assert to_signed(1 << 63) == -(1 << 63)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_roundtrip(self, value):
        assert to_signed(value & U64_MASK) == value


class TestWrapAdd:
    def test_plain(self):
        assert wrap_add(2, 3) == 5

    def test_wraps(self):
        assert wrap_add(U64_MASK, 1) == 0

    def test_negative_delta(self):
        assert wrap_add(5, -7) == U64_MASK - 1

    @given(u64s, u64s)
    def test_always_in_range(self, a, b):
        assert 0 <= wrap_add(a, b) <= U64_MASK


class TestAlignment:
    def test_is_word_aligned(self):
        assert is_word_aligned(0)
        assert is_word_aligned(WORD)
        assert not is_word_aligned(WORD - 1)

    def test_align_up(self):
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(0, 8) == 0

    def test_align_down(self):
        assert align_down(15, 8) == 8
        assert align_down(8, 8) == 8

    def test_align_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            align_up(4, 0)
        with pytest.raises(ValueError):
            align_down(4, -1)

    @given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([1, 2, 4, 8, 64, 4096]))
    def test_align_up_properties(self, value, alignment):
        up = align_up(value, alignment)
        assert up >= value
        assert up % alignment == 0
        assert up - value < alignment
