"""Integration: monitoring consumers behind a broker tier (sections 6 + 7.2).

Section 6's consumers each hold their own hardware subscriptions; at
fleet scale, section 7.2 says to interpose brokers. This test runs the
monitoring case study with many consumers attached through a
BrokerNetwork and checks that alarms still flow while hardware
subscription state stays bounded.
"""

import pytest

from repro import Cluster
from repro.apps.monitoring import FarHistogram
from repro.fabric.wire import WORD
from repro.notify import BrokerNetwork

NODE_SIZE = 32 << 20


class _AlarmSink:
    """A minimal monitoring process: counts alarm-range notifications."""

    def __init__(self):
        self.events = 0

    def deliver(self, notification):
        self.events += notification.coalesced_count


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestBrokeredMonitoring:
    def test_many_processes_bounded_hardware_state(self, cluster):
        histogram = FarHistogram.create(cluster.allocator, bins=100)
        producer = cluster.client("producer")
        network = BrokerNetwork.create(cluster.notifications, broker_count=4)
        base = histogram.vector.base(producer)

        # 40 monitoring processes all watch the failure bin [99].
        processes = [_AlarmSink() for _ in range(40)]
        for process in processes:
            network.attach(process, base + 99 * WORD, WORD)
        # Hardware state: one subscription for the shared topic, not 40.
        assert cluster.notifications.hardware_subscriptions == 1

        histogram.record(producer, 50)  # normal: nobody notified
        assert all(p.events == 0 for p in processes)
        histogram.record(producer, 99)  # failure: everyone notified
        assert all(p.events == 1 for p in processes)
        assert network.total_messages_out() == 40

    def test_mixed_direct_and_brokered(self, cluster):
        histogram = FarHistogram.create(cluster.allocator, bins=100)
        producer = cluster.client("producer")
        base = histogram.vector.base(producer)
        direct = cluster.client("direct-consumer")
        cluster.notifications.notify0(direct, base + 99 * WORD, WORD)
        network = BrokerNetwork.create(cluster.notifications, broker_count=2)
        sink = _AlarmSink()
        network.attach(sink, base + 99 * WORD, WORD)

        histogram.record(producer, 99)
        assert direct.pending_notifications() == 1
        assert sink.events == 1

    def test_broker_fanout_scales_with_processes_not_subscriptions(self, cluster):
        histogram = FarHistogram.create(cluster.allocator, bins=100)
        producer = cluster.client("producer")
        base = histogram.vector.base(producer)
        network = BrokerNetwork.create(cluster.notifications, broker_count=4)
        for count in (10, 20, 40):
            sinks = [_AlarmSink() for _ in range(count)]
            for sink in sinks:
                network.attach(sink, base + 90 * WORD, WORD)
        # Still one topic -> one hardware subscription.
        assert cluster.notifications.hardware_subscriptions == 1
        histogram.record(producer, 90)
        assert network.total_messages_out() == 70
