"""Randomized crash-injection soak test: at-least-once end to end.

Drives a queue-based work pipeline with random producers/consumers and a
randomly-timed client crash, then recovers with the scrubber and checks
the delivery guarantee: every enqueued item is delivered at least once,
and any duplicate is flagged by the scrub report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric.errors import ClientDeadError, QueueEmpty, QueueFull
from repro.recovery import QueueScrubber

NODE_SIZE = 8 << 20


class TestCrashSoak:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.integers(min_value=5, max_value=60),  # ops before the crash
        st.integers(min_value=0, max_value=2),  # which client crashes
    )
    def test_at_least_once_through_a_crash(self, seed, crash_after, victim_index):
        import random

        rng = random.Random(seed)
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        queue = cluster.far_queue(capacity=24, max_clients=4, clear_batch=4)
        clients = [cluster.client(f"c{i}") for i in range(3)]
        healer = cluster.client("healer")

        enqueued: list[int] = []
        delivered: list[int] = []
        next_value = 1
        ops_done = 0
        crashed = False

        def step(client) -> None:
            nonlocal next_value
            if rng.random() < 0.55:
                try:
                    queue.enqueue(client, next_value)
                    enqueued.append(next_value)
                    next_value += 1
                except QueueFull:
                    pass
            else:
                try:
                    delivered.append(queue.dequeue(client))
                except QueueEmpty:
                    pass

        while ops_done < 120:
            client = rng.choice(clients)
            if not client.alive:
                continue
            if not crashed and ops_done == crash_after:
                clients[victim_index].crash()
                crashed = True
                if client is clients[victim_index]:
                    continue
            try:
                step(client)
            except ClientDeadError:
                pass
            ops_done += 1

        if not crashed:
            clients[victim_index].crash()

        # Recover: quiesce survivors, detach the dead client, scrub.
        survivors = [c for c in clients if c.alive] + [healer]
        report = QueueScrubber(queue).recover_crashed_client(
            clients[victim_index].client_id, healer, survivors=tuple(survivors)
        )

        # Drain everything that remains (survivors + healer), re-injecting
        # anything the scrubber could not fit into a full queue.
        def drain() -> None:
            idle = 0
            while idle < 4:
                progressed = False
                for client in survivors:
                    got = queue.try_dequeue(client)
                    if got is not None:
                        delivered.append(got)
                        progressed = True
                idle = 0 if progressed else idle + 1

        drain()
        for value in report.unrecovered:
            queue.enqueue(healer, value)
        if report.unrecovered:
            drain()

        # At-least-once: nothing enqueued is lost.
        assert set(enqueued) <= set(delivered), (
            sorted(set(enqueued) - set(delivered)),
            report,
        )
        # Duplicates only when the scrubber re-delivered (directly or via
        # the unrecovered hand-back).
        if len(delivered) != len(set(delivered)):
            assert report.redelivery_possible or report.unrecovered
        # Nothing is delivered that was never enqueued.
        assert set(delivered) <= set(enqueued)
