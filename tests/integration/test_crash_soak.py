"""Randomized crash-injection soak tests: end-to-end guarantees under fire.

Two guarantees, each soaked under randomized schedules:

* at-least-once delivery through a *client* crash (queue + scrubber);
* zero silent wrong reads through *data* faults — corruption, torn
  writes, and a node fail-stop + repair, against a full value oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric import FaultPlan
from repro.fabric.errors import (
    ClientDeadError,
    FarCorruptionError,
    FarTimeoutError,
    NodeUnavailableError,
    QueueEmpty,
    QueueFull,
)
from repro.fabric.replication import ReplicatedRegion
from repro.recovery import QueueScrubber, RepairCoordinator

NODE_SIZE = 8 << 20


class TestCrashSoak:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.integers(min_value=5, max_value=60),  # ops before the crash
        st.integers(min_value=0, max_value=2),  # which client crashes
    )
    def test_at_least_once_through_a_crash(self, seed, crash_after, victim_index):
        import random

        rng = random.Random(seed)
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        queue = cluster.far_queue(capacity=24, max_clients=4, clear_batch=4)
        clients = [cluster.client(f"c{i}") for i in range(3)]
        healer = cluster.client("healer")

        enqueued: list[int] = []
        delivered: list[int] = []
        next_value = 1
        ops_done = 0
        crashed = False

        def step(client) -> None:
            nonlocal next_value
            if rng.random() < 0.55:
                try:
                    queue.enqueue(client, next_value)
                    enqueued.append(next_value)
                    next_value += 1
                except QueueFull:
                    pass
            else:
                try:
                    delivered.append(queue.dequeue(client))
                except QueueEmpty:
                    pass

        while ops_done < 120:
            client = rng.choice(clients)
            if not client.alive:
                continue
            if not crashed and ops_done == crash_after:
                clients[victim_index].crash()
                crashed = True
                if client is clients[victim_index]:
                    continue
            try:
                step(client)
            except ClientDeadError:
                pass
            ops_done += 1

        if not crashed:
            clients[victim_index].crash()

        # Recover: quiesce survivors, detach the dead client, scrub.
        survivors = [c for c in clients if c.alive] + [healer]
        report = QueueScrubber(queue).recover_crashed_client(
            clients[victim_index].client_id, healer, survivors=tuple(survivors)
        )

        # Drain everything that remains (survivors + healer), re-injecting
        # anything the scrubber could not fit into a full queue.
        def drain() -> None:
            idle = 0
            while idle < 4:
                progressed = False
                for client in survivors:
                    got = queue.try_dequeue(client)
                    if got is not None:
                        delivered.append(got)
                        progressed = True
                idle = 0 if progressed else idle + 1

        drain()
        for value in report.unrecovered:
            queue.enqueue(healer, value)
        if report.unrecovered:
            drain()

        # At-least-once: nothing enqueued is lost.
        assert set(enqueued) <= set(delivered), (
            sorted(set(enqueued) - set(delivered)),
            report,
        )
        # Duplicates only when the scrubber re-delivered (directly or via
        # the unrecovered hand-back).
        if len(delivered) != len(set(delivered)):
            assert report.redelivery_possible or report.unrecovered
        # Nothing is delivered that was never enqueued.
        assert set(delivered) <= set(enqueued)


class TestCorruptionCrashSoak:
    """Corruption + torn writes + a node fail-stop + repair, against an
    oracle: a verified read returns an acceptable value or raises — it
    NEVER silently returns wrong bytes, at any corruption rate."""

    PAYLOAD = 32
    BLOCKS = 8

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.sampled_from([0.0, 0.01, 0.05]),  # corruption rate
        st.sampled_from([0.0, 0.1]),  # torn-write rate
        st.integers(min_value=10, max_value=60),  # op index of the node death
    )
    def test_no_silent_wrong_reads(self, seed, corrupt_p, torn_p, fail_at):
        import random

        rng = random.Random(seed)
        cluster = Cluster(node_count=4, node_size=NODE_SIZE)
        region = ReplicatedRegion.create_framed(
            cluster.allocator,
            block_payload=self.PAYLOAD,
            block_count=self.BLOCKS,
            copies=2,
        )
        coordinator = RepairCoordinator(
            cluster.allocator, home_node=3, chunk_blocks=4
        )
        c = cluster.client(retry_policy=None, breaker_policy=None)
        coordinator.register(c, region)

        # Scope the rot to the replica payload ranges (the epoch word is
        # metadata — rotting it models a different failure than CORRUPT).
        span = self.BLOCKS * (self.PAYLOAD + 16)
        plan = FaultPlan().random_torn(torn_p)
        for base in region.replicas:
            plan.random_corruption(
                corrupt_p, bits=1, span=16, address_range=(base, base + span)
            )
        injector = cluster.inject_faults(seed=seed, plan=plan)

        # Oracle: per block, the set of payloads a read may legally return.
        # A *failed* write (torn / dead node) is allowed to have landed on
        # some replicas and not others: {old, new} until overwritten.
        acceptable: dict[int, set[bytes]] = {
            i: {b"\x00" * self.PAYLOAD} for i in range(self.BLOCKS)
        }
        stamp = 0

        def check_read(index: int) -> None:
            try:
                got = region.read_block(c, index)
            except (FarCorruptionError, NodeUnavailableError, FarTimeoutError):
                return  # detected/unavailable — loud, never wrong
            assert got in acceptable[index], (
                f"silent wrong read of block {index}: {got!r} not in "
                f"{acceptable[index]!r}"
            )

        dead_node = None
        for op in range(80):
            if op == fail_at:
                dead_node = cluster.fabric.node_of(region.replicas[0])
                cluster.fabric.fail_node(dead_node)
            index = rng.randrange(self.BLOCKS)
            if rng.random() < 0.5:
                stamp += 1
                payload = stamp.to_bytes(8, "little") * (self.PAYLOAD // 8)
                try:
                    region.write_block(c, index, payload)
                    acceptable[index] = {payload}
                except (FarTimeoutError, NodeUnavailableError):
                    acceptable[index].add(payload)  # may be half-landed
            else:
                check_read(index)

        # Quiet window: repair the dead node's replicas, faults off.
        injector.enabled = False
        if dead_node is not None:
            try:
                report = coordinator.run(c, dead_node)
            except FarCorruptionError:
                return  # both copies of a block rotted: loss, surfaced loudly
            assert report.replicas_rebuilt == 1
            assert region.live_replicas() == 2

        for index in range(self.BLOCKS):
            check_read(index)
