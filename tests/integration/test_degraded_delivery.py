"""Integration: applications on degraded notification delivery (§7.2).

The paper insists notifications may be coalesced, dropped, or replaced by
loss warnings, and that "the data structure algorithm then adapts
accordingly". These tests run the monitoring consumer and the cached
vector under degraded policies and check the adaptations actually hold.
"""


from repro import Cluster
from repro.apps.monitoring import AlarmConsumer, AlarmLevel, MetricProducer, WindowedHistogramRing
from repro.core.vector import CachedFarVector
from repro.notify import DeliveryPolicy

NODE_SIZE = 32 << 20


class TestMonitoringUnderCoalescing:
    def test_coalesced_events_still_count_toward_duration(self):
        # coalesce x4: one delivered notification represents 4 samples;
        # the min_events duration threshold must honour coalesced_count.
        cluster = Cluster(
            node_count=1,
            node_size=NODE_SIZE,
            delivery_policy=DeliveryPolicy(coalesce_every=4),
        )
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=2)
        producer = MetricProducer(ring=ring, client=cluster.client())
        consumer = AlarmConsumer(
            ring=ring,
            manager=cluster.notifications,
            client=cluster.client(),
            levels=(AlarmLevel("critical", 95, 100, min_events=8),),
        )
        consumer.start()
        for _ in range(8):  # 8 tail samples -> 2 delivered notifications
            producer.record(97)
        alarms = consumer.poll()
        assert consumer.client.metrics.notifications_received == 2
        assert [a.level for a in alarms] == ["critical"]
        assert alarms[0].events == 8

    def test_monitoring_traffic_shrinks_under_coalescing(self):
        def notifications(policy):
            cluster = Cluster(
                node_count=1, node_size=NODE_SIZE, delivery_policy=policy
            )
            ring = WindowedHistogramRing.create(
                cluster.allocator, bins=100, window_count=2
            )
            producer = MetricProducer(ring=ring, client=cluster.client())
            consumer = AlarmConsumer(
                ring=ring, manager=cluster.notifications, client=cluster.client()
            )
            consumer.start()
            for _ in range(64):
                producer.record(99)
            consumer.poll()
            return consumer.client.metrics.notifications_received

        reliable = notifications(DeliveryPolicy())
        coalesced = notifications(DeliveryPolicy(coalesce_every=8))
        assert coalesced <= reliable / 7


class TestCachedVectorUnderLoss:
    def test_loss_warning_invalidates_whole_cache(self):
        cluster = Cluster(
            node_count=1,
            node_size=NODE_SIZE,
            delivery_policy=DeliveryPolicy(bucket_capacity=2, bucket_refill=2),
        )
        vector = cluster.far_vector(16)
        writer = cluster.client()
        reader = cluster.client()
        cached = CachedFarVector.attach(vector, reader, cluster.notifications)
        # Burst: most update notifications dropped by the bucket.
        for i in range(16):
            vector.set(writer, i, i + 100)
        cluster.notifications.tick()
        vector.set(writer, 0, 999)  # carries the loss warning
        cached.pump()
        # The cache knows it cannot trust itself...
        assert cached.hit_fraction() < 1.0
        # ...and re-reads through to the truth for every element.
        assert cached.get(0) == 999
        for i in range(1, 16):
            assert cached.get(i) == i + 100

    def test_random_loss_never_returns_wrong_marked_valid_data(self):
        cluster = Cluster(
            node_count=1,
            node_size=NODE_SIZE,
            delivery_policy=DeliveryPolicy(drop_probability=0.4, seed=5),
        )
        vector = cluster.far_vector(8)
        writer, reader = cluster.client(), cluster.client()
        cached = CachedFarVector.attach(vector, reader, cluster.notifications)
        import random

        rng = random.Random(1)
        shadow = [0] * 8
        for _ in range(100):
            index = rng.randrange(8)
            value = rng.randrange(1 << 20)
            vector.set(writer, index, value)
            shadow[index] = value
        # Random drops mean staleness, never wrongness: dropped updates
        # leave the cache *stale* until the next delivered notification
        # or loss warning for that word — but any word the cache serves
        # as valid after a full reconciliation pass must be the truth.
        cached.pump()
        cached._valid[:] = False  # force read-through reconciliation
        for i in range(8):
            assert cached.get(i) == shadow[i]
