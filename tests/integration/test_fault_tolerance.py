"""Chaos integration test: data structures under seeded transient faults.

A seeded :class:`FaultPlan` mixes flaky windows, random dropped
completions, and latency spikes while clients drive HT-tree lookups,
queue enqueue/dequeue, and replicated reads. The contract under chaos:

* every operation either completes or raises a **typed**
  :class:`FabricError` subclass — never hangs, never a bare exception;
* no operation corrupts data — timed-out requests were never executed
  (request-drop semantics), so values read back are always values that
  were written, and FIFO order survives;
* the retry layer and injector account for everything they did, and the
  whole scenario replays bit-identically from the same seed.
"""

from __future__ import annotations


from repro import Cluster
from repro.fabric import FaultPlan, RetryPolicy
from repro.fabric.errors import FabricError, FarTimeoutError, QueueEmpty, QueueFull
from repro.fabric.replication import ReplicatedRegion
from repro.recovery import LeasedFarMutex, QueueScrubber

NODE_SIZE = 8 << 20
CHAOS_PLAN_SEED = 1337


def chaos_plan() -> FaultPlan:
    return (
        FaultPlan()
        .random_timeouts(0.04)
        .random_spikes(0.05, multiplier=4.0)
        .random_flaky(0.004, duration=6)
        .flaky_at(40, node=0, duration=10)
        .timeout_at(200)
    )


class TestChaosWorkload:
    def _run_scenario(self, seed: int):
        """Drive tree/queue/replica traffic under one seeded fault plan and
        return every counter the scenario produced."""
        from repro.fabric import Client

        # Jitter tokens derive from client ids: reset the global counter so
        # back-to-back scenario runs are bit-identical.
        Client.reset_ids()
        cluster = Cluster(node_count=3, node_size=NODE_SIZE)
        tree = cluster.ht_tree(bucket_count=64, initial_leaves=2)
        queue = cluster.far_queue(capacity=64, max_clients=2)
        region = ReplicatedRegion.create(cluster.allocator, 64, copies=2)

        # Populate fault-free so chaos only perturbs the read/propagate
        # phase, then arm the injector.
        setup = cluster.client("setup")
        for key in range(64):
            tree.put(setup, key, key * 3)
        region.write_word(setup, 0, 4242)
        injector = cluster.inject_faults(seed=seed, plan=chaos_plan())

        c = cluster.client("chaos", retry_policy=RetryPolicy(max_attempts=3))
        outcomes: list[str] = []
        dequeued: list[int] = []
        next_value = 1
        for i in range(300):
            kind = i % 3
            try:
                if kind == 0:
                    value = tree.get(c, i % 64)
                    assert value == (i % 64) * 3  # never stale garbage
                    outcomes.append("tree-hit")
                elif kind == 1:
                    if i % 6 == 1:
                        queue.enqueue(c, next_value)
                        next_value += 1
                        outcomes.append("enq")
                    else:
                        dequeued.append(queue.dequeue(c))
                        outcomes.append("deq")
                else:
                    assert region.read_word(c, 0) == 4242
                    outcomes.append("replica")
            except (QueueEmpty, QueueFull):
                outcomes.append("queue-edge")
            except FabricError as err:
                # Typed failure: retries/breakers exhausted. Allowed, but
                # it must be the *typed* hierarchy, nothing else.
                outcomes.append(f"fault:{type(err).__name__}")
        # FIFO survives chaos: values drain in the order they entered.
        assert dequeued == sorted(dequeued)
        assert all(v > 0 for v in dequeued)
        counters = {
            "outcomes": outcomes,
            "dequeued": dequeued,
            "faults_injected": injector.stats.faults_injected,
            "injector": injector.stats.as_dict(),
            "retries": c.metrics.retries,
            "timeouts": c.metrics.timeouts,
            "backoff_ns": c.metrics.backoff_ns,
            "far_accesses": c.metrics.far_accesses,
            "breaker_trips": c.metrics.breaker_trips,
            "failovers": region.stats.failovers,
        }
        return counters

    def test_every_op_completes_or_raises_typed(self):
        counters = self._run_scenario(CHAOS_PLAN_SEED)
        assert len(counters["outcomes"]) == 300  # nothing hung or vanished
        # The plan actually bit: faults were injected and absorbed.
        assert counters["faults_injected"] > 0
        assert counters["timeouts"] > 0
        assert counters["retries"] > 0
        assert counters["backoff_ns"] > 0
        # Retries hid most faults: a solid majority of ops completed even
        # through the flaky windows (which drop every attempt for their
        # duration and trip breakers).
        completed = [o for o in counters["outcomes"] if not o.startswith("fault:")]
        assert len(completed) >= 200
        # Escaped faults are all from the typed hierarchy (the except
        # clause guarantees it; assert the scenario exercised it at all).
        escaped = [o for o in counters["outcomes"] if o.startswith("fault:")]
        assert escaped, "chaos plan too gentle: nothing escaped the retry layer"

    def test_chaos_replays_bit_identically(self):
        first = self._run_scenario(CHAOS_PLAN_SEED)
        second = self._run_scenario(CHAOS_PLAN_SEED)
        assert first == second

    def test_different_seed_different_chaos(self):
        first = self._run_scenario(CHAOS_PLAN_SEED)
        second = self._run_scenario(CHAOS_PLAN_SEED + 1)
        assert first["injector"] != second["injector"]


class TestLeaseUnderFaults:
    def test_try_acquire_tolerates_timeouts(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        lease = LeasedFarMutex.create(cluster.allocator, ttl_epochs=16)
        cluster.inject_faults(
            seed=5, plan=FaultPlan().random_timeouts(0.3)
        )
        c = cluster.client(retry_policy=RetryPolicy(max_attempts=2))
        acquired = 0
        for _ in range(30):
            try:
                if lease.try_acquire(c):
                    acquired += 1
                    lease.release(c)
            except FarTimeoutError:
                pass  # release may exhaust retries; the lease expires
        assert acquired > 0
        assert lease.stats.attempts == 30
        # Some acquisition attempts were absorbed as timeouts, not errors.
        assert lease.stats.timeouts > 0

    def test_mutual_exclusion_survives_timeouts(self):
        """A try_acquire that timed out mid-CAS must not leave the lock
        stolen: either the winner holds it, or it is cleanly free."""
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        lease = LeasedFarMutex.create(cluster.allocator, ttl_epochs=1 << 30)
        holder = cluster.client("holder")
        assert lease.try_acquire(holder)
        cluster.inject_faults(seed=7, plan=FaultPlan().random_timeouts(0.5))
        rival = cluster.client("rival", retry_policy=RetryPolicy(max_attempts=2))
        for _ in range(20):
            try:
                assert not lease.try_acquire(rival)
            except FarTimeoutError:
                pass
        cluster.fabric.set_fault_injector(None)
        assert lease.holder(holder) == holder.client_id


class TestScrubUnderFaults:
    def test_scrub_restarts_and_recovers(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        queue = cluster.far_queue(capacity=24, max_clients=2)
        producer = cluster.client("producer")
        for value in (11, 22, 33):
            queue.enqueue(producer, value)

        cluster.inject_faults(seed=2, plan=FaultPlan().random_timeouts(0.25))
        scrubber = QueueScrubber(queue)
        healer = cluster.client("healer", retry_policy=RetryPolicy(max_attempts=2))
        report = None
        for _ in range(12):  # persistence against an unlucky seed
            try:
                report = scrubber.scrub(healer, max_restarts=3)
                break
            except FarTimeoutError:
                continue
        assert report is not None
        cluster.fabric.set_fault_injector(None)
        drained = []
        consumer = cluster.client("consumer")
        while True:
            try:
                drained.append(queue.dequeue(consumer))
            except QueueEmpty:
                break
        # Nothing lost: scrubbing under faults preserved all three items.
        assert sorted(drained) == [11, 22, 33]
