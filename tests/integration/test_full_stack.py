"""Full-stack scenario: every subsystem in one deployment.

A four-node cluster runs a monitoring pipeline, a KV catalog, and a work
queue simultaneously, with structures discovered through the registry;
then a client crashes and a memory node fails, and the deployment keeps
its invariants. This is the adoption test: the pieces must compose, not
just pass their own suites.
"""

import pytest

from repro import Cluster
from repro.apps.kvstore import FarKVStore
from repro.apps.monitoring import AlarmConsumer, MetricProducer, WindowedHistogramRing
from repro.fabric.errors import QueueEmpty
from repro.fabric.replication import ReplicatedRegion
from repro.recovery import LeasedFarMutex, QueueScrubber
from repro.workloads import MetricStream

NODE_SIZE = 32 << 20


@pytest.mark.slow
class TestFullStack:
    def test_everything_composes(self):
        cluster = Cluster(node_count=4, node_size=NODE_SIZE)
        operator = cluster.client("operator")
        registry = cluster.registry()

        # --- provision: KV catalog, work queue, monitoring ring
        catalog = FarKVStore.create(cluster, registry, operator, "catalog")
        queue = cluster.far_queue(capacity=64, max_clients=8)
        registry.register_queue(operator, "jobs", queue)
        ring = WindowedHistogramRing.create(cluster.allocator, bins=100, window_count=3)
        lease = LeasedFarMutex.create(cluster.allocator, ttl_epochs=2)
        # Config that must survive a node outage lives on two replicas.
        config = ReplicatedRegion.create(cluster.allocator, 64, copies=2)
        config.write_word(operator, 0, 0xC0FFEE)

        # --- steady state: producer feeds metrics, workers process jobs
        producer = MetricProducer(ring=ring, client=cluster.client("metrics"))
        watcher = AlarmConsumer(
            ring=ring, manager=cluster.notifications, client=cluster.client("watcher")
        )
        watcher.start()
        samples = MetricStream(bins=100, spike_probability=0.02, seed=9).samples(600)
        producer.run(samples, samples_per_window=300)
        watcher.poll()

        workers = [cluster.client(f"worker-{i}") for i in range(3)]
        for job in range(30):
            queue.enqueue(operator, job + 1)
            catalog.put(operator, f"job:{job}", b"queued")
        done = 0
        while done < 30:
            for worker in workers:
                try:
                    job = queue.dequeue(worker)
                except QueueEmpty:
                    continue
                if lease.try_acquire(worker):
                    catalog.put(worker, f"job:{job - 1}", b"done")
                    lease.release(worker)
                    done += 1
                else:  # pragma: no cover - lease is uncontended here
                    queue.enqueue(worker, job)

        assert watcher.alarms, "the 2% alarm tail must have fired"
        assert all(
            catalog.get(operator, f"job:{j}") == b"done" for j in range(30)
        )

        # --- fault phase: a worker dies holding the lease; a node fails
        victim = workers[0]
        assert lease.try_acquire(victim)
        victim.crash()
        survivor = workers[1]
        for _ in range(3):
            lease.tick(survivor)
        assert lease.try_acquire(survivor)
        lease.release(survivor)
        report = QueueScrubber(queue).recover_crashed_client(
            victim.client_id, survivor, survivors=(workers[1], workers[2])
        )
        assert not report.unrecovered

        config_node = cluster.fabric.node_of(config.replicas[0])
        cluster.fabric.fail_node(config_node)
        assert config.read_word(survivor, 0) == 0xC0FFEE  # replica failover
        cluster.fabric.repair_node(config_node)
        config.resync(survivor, repaired_index=0)

        # --- the rest of the deployment never noticed
        discovered = registry.lookup_queue(cluster.client("late-joiner"), "jobs")
        late = cluster.client("late-worker")
        discovered.enqueue(late, 999)
        assert discovered.dequeue(late) == 999
        assert catalog.get(late := cluster.client(), "job:0") == b"done"
