"""Migration soak: oracle-checked drains under concurrent writers and faults.

The elastic-membership guarantee under test: a live drain loses zero
bytes — every word the workload wrote (before or *during* the copy) reads
back exactly, writers are never silently dropped (forwarded under
``FORWARD``, fenced loudly under ``FENCE``), and transient fabric faults
during the copy only slow it down, never corrupt the outcome.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric import FaultPlan, MigrationWritePolicy
from repro.fabric.errors import (
    FarCorruptionError,
    NodeUnavailableError,
    StaleEpochError,
)
from repro.fabric.replication import ReplicatedRegion
from repro.recovery import RepairCoordinator

NODE_SIZE = 1 << 20  # 4 extents of 256 KiB per node
ES = 256 << 10


class TestDrainSoak:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.sampled_from([0, 1]),  # which node to drain
        st.booleans(),  # interleaved initial layout?
    )
    def test_drain_under_writers_loses_zero_bytes(self, seed, victim, interleaved):
        rng = random.Random(seed)
        kwargs = {"interleave_granularity": ES} if interleaved else {}
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE, interleaved=interleaved, **kwargs
        )
        cluster.add_node()
        driver = cluster.client("driver")
        writer = cluster.client("writer")
        total = cluster.fabric.total_size

        oracle: dict[int, bytes] = {}

        def write_random_word():
            offset = rng.randrange(0, total // 8) * 8
            value = rng.getrandbits(64).to_bytes(8, "little")
            writer.write(offset, value)
            oracle[offset] = value

        for _ in range(64):  # pre-populate
            write_random_word()

        report = cluster.drain_node(victim, driver, interleave=write_random_word)
        assert report.extents_moved == NODE_SIZE // ES
        assert cluster.fabric.extents.extents_on_node(victim) == []

        for offset, value in oracle.items():
            assert driver.read(offset, 8) == value, f"lost write at 0x{offset:x}"
        # Exact accounting: the drain charged precisely the predicted
        # copy round trips (forward hops are charged to the writer).
        predicted = cluster.migration.predicted_copy_accesses(report.extents_moved)
        assert cluster.migration.stats.copy_far_accesses == predicted

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_drain_survives_transient_faults(self, seed):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        cluster.add_node()
        driver = cluster.client("driver")  # default retry policy heals timeouts
        payload = bytes(i % 256 for i in range(4096))
        driver.write(0, payload)
        cluster.inject_faults(seed=seed, plan=FaultPlan().random_timeouts(0.05))
        report = cluster.drain_node(0, driver)
        cluster.fabric.set_fault_injector(None)
        assert report.extents_moved == NODE_SIZE // ES
        assert driver.read(0, 4096) == payload

    def test_fence_policy_refuses_writers_but_never_loses(self):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        cluster.add_node()
        driver = cluster.client("driver")
        writer = cluster.client("writer")
        rng = random.Random(7)

        oracle: dict[int, bytes] = {}
        fenced = [0]

        def contend():
            offset = rng.randrange(0, NODE_SIZE // 8) * 8  # node 0 only
            value = rng.getrandbits(64).to_bytes(8, "little")
            try:
                writer.write(offset, value)
                oracle[offset] = value
            except StaleEpochError:
                fenced[0] += 1  # refused whole: nothing landed anywhere

        for _ in range(32):
            contend()
        cluster.drain_node(
            0, driver, policy=MigrationWritePolicy.FENCE, interleave=contend
        )
        assert fenced[0] > 0, "the soak must actually exercise the fence"
        for offset, value in oracle.items():
            assert driver.read(offset, 8) == value
        assert cluster.migration.stats.fences == fenced[0]

    def test_drain_then_repair_interoperate(self):
        """Migration and repair share fault domains: a drained node's
        extents move without collapsing replica separation, and repair
        still heals corruption afterwards."""
        cluster = Cluster(node_count=4, node_size=NODE_SIZE)
        cluster.add_node()
        client = cluster.client(retry_policy=None, breaker_policy=None)
        region = ReplicatedRegion.create_framed(
            cluster.allocator, block_payload=32, block_count=8, copies=2
        )
        coordinator = RepairCoordinator(cluster.allocator, home_node=3)
        coordinator.register(client, region)
        payloads = {}
        for index in range(8):
            payloads[index] = bytes([index + 1]) * 32
            region.write_block(client, index, payloads[index])

        # Drain the node holding replica 0: its extents must not land on
        # replica 1's node (sibling separation), data must survive.
        victim = cluster.fabric.node_of(region.replicas[0])
        sibling = cluster.fabric.node_of(region.replicas[1])
        report = cluster.drain_node(victim, client)
        assert report.extents_moved > 0
        new_home = cluster.fabric.node_of(region.replicas[0])
        assert new_home not in (victim, sibling)

        # Corrupt the moved replica: verified reads still heal from the
        # sibling — integrity machinery follows the virtual address.
        loc = cluster.fabric.locate(region.replicas[0])
        cluster.fabric.nodes[loc.node].corrupt_bit(loc.offset + 20, 2)
        for index in range(8):
            assert region.read_block(client, index) == payloads[index]
        assert region.stats.verify_misses >= 1

        # And repair still works in the post-drain world.
        cluster.fabric.fail_node(new_home)
        repair_report = coordinator.run(client, new_home)
        assert repair_report.replicas_rebuilt == 1
        assert region.live_replicas() == 2
        for index in range(8):
            assert region.read_block(client, index) == payloads[index]

    def test_corruption_of_staged_bytes_is_detected_by_frames(self):
        """Rot introduced in the staging copy during migration is caught
        by the frame checksums on the next verified read (the migration
        itself is byte-oblivious; integrity rides the frames)."""
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        spare = cluster.add_node()
        client = cluster.client(retry_policy=None, breaker_policy=None)
        region = ReplicatedRegion.create_framed(
            cluster.allocator, block_payload=32, block_count=4, copies=2
        )
        for index in range(4):
            region.write_block(client, index, bytes([index + 1]) * 32)

        extent = cluster.fabric.extents.extent_of(region.replicas[0])
        handle = cluster.migration.begin(client, extent, spare)
        handle.run()
        # Rot the *moved* copy.
        loc = cluster.fabric.locate(region.replicas[0])
        assert loc.node == spare
        cluster.fabric.nodes[loc.node].corrupt_bit(loc.offset + 18, 1)
        got = region.read_block(client, 0)  # heals from the other replica
        assert got == bytes([1]) * 32
        assert region.stats.verify_misses >= 1

        # With the second replica also dead, the rot is loud, not silent
        # (corruption error, or unavailable while probing the dead copy).
        cluster.fabric.fail_node(cluster.fabric.node_of(region.replicas[1]))
        with pytest.raises((FarCorruptionError, NodeUnavailableError)):
            region.read_block(client, 0)
