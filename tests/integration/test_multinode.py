"""Integration tests for multi-node behaviour (section 7.1)."""

import pytest

from repro import Cluster
from repro.alloc import near, on_node
from repro.fabric import IndirectionPolicy

NODE_SIZE = 8 << 20


class TestStructuresOnStripedMemory:
    """Every data structure must work unchanged over interleaved placement."""

    @pytest.fixture
    def striped(self):
        return Cluster(node_count=4, node_size=NODE_SIZE, interleaved=True)

    def test_ht_tree(self, striped):
        tree = striped.ht_tree(bucket_count=64, max_chain=4)
        client = striped.client()
        for k in range(300):
            tree.put(client, k * 11, k)
        for k in range(300):
            assert tree.get(client, k * 11) == k

    def test_queue(self, striped):
        queue = striped.far_queue(capacity=64, max_clients=2)
        producer, consumer = striped.client(), striped.client()
        for i in range(200):
            queue.enqueue(producer, i)
            assert queue.dequeue(consumer) == i

    def test_refreshable_vector(self, striped):
        vector = striped.refreshable_vector(512, group_size=64)
        writer, reader = striped.client(), striped.client()
        vector.set(writer, 100, 5)
        vector.refresh(reader)
        assert vector.get(reader, 100) == 5

    def test_striping_spreads_node_load(self, striped):
        client = striped.client()
        base = striped.allocator.alloc(256 * 4096)
        for i in range(256):
            client.write_u64(base + i * 4096, i)
        ops = [node.stats.total_ops() for node in striped.fabric.nodes]
        assert min(ops) > 0
        assert max(ops) <= 2 * min(ops)  # roughly balanced


class TestIndirectionPolicies:
    """Forwarding beats erroring on both traversals and round trips."""

    def _chain(self, cluster):
        client = cluster.client()
        pointer = cluster.allocator.alloc_words(1, on_node(0))
        target = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(pointer, target)
        client.write_u64(target, 7)
        return client, pointer

    def test_forward_traversals(self):
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.FORWARD,
        )
        client, pointer = self._chain(cluster)
        snapshot = client.metrics.snapshot()
        assert client.load0_u64(pointer) == 7
        delta = client.metrics.delta(snapshot)
        assert delta.round_trips == 1
        assert delta.network_traversals == 3

    def test_error_traversals(self):
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        client, pointer = self._chain(cluster)
        snapshot = client.metrics.snapshot()
        assert client.load0_u64(pointer) == 7
        delta = client.metrics.delta(snapshot)
        assert delta.round_trips == 2
        assert delta.network_traversals == 4

    def test_forward_is_faster_in_simulated_time(self):
        def elapsed(policy):
            cluster = Cluster(
                node_count=2, node_size=NODE_SIZE, indirection_policy=policy
            )
            client, pointer = self._chain(cluster)
            start = client.clock.now_ns
            client.load0_u64(pointer)
            return client.clock.now_ns - start

        assert elapsed(IndirectionPolicy.FORWARD) < elapsed(IndirectionPolicy.ERROR)

    def test_local_placement_avoids_both(self):
        # Section 7.1's allocator-hint fix: co-locate pointer and target.
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        client = cluster.client()
        pointer = cluster.allocator.alloc_words(1, on_node(0))
        target = cluster.allocator.alloc_words(1, near(pointer))
        client.write_u64(pointer, target)
        client.write_u64(target, 9)
        snapshot = client.metrics.snapshot()
        assert client.load0_u64(pointer) == 9
        delta = client.metrics.delta(snapshot)
        assert delta.round_trips == 1
        assert delta.indirection_errors == 0

    def test_ht_tree_hints_keep_chains_local(self):
        # HT-tree allocates chain records near their table, so lookups
        # never pay forwarding even on multi-node range placement.
        cluster = Cluster(node_count=4, node_size=NODE_SIZE)
        tree = cluster.ht_tree(bucket_count=32, max_chain=16)
        client = cluster.client()
        for k in range(300):
            tree.put(client, k, k)
        snapshot = client.metrics.snapshot()
        for k in range(300):
            assert tree.get(client, k) == k
        assert client.metrics.delta(snapshot).indirection_forwards == 0

    def test_spread_hint_distributes_tables(self):
        cluster = Cluster(node_count=4, node_size=NODE_SIZE)
        tree = cluster.ht_tree(bucket_count=16, max_chain=2, initial_leaves=8)
        client = cluster.client()
        cache = tree._cache(client)
        nodes = {cluster.fabric.node_of(leaf.table) for leaf in cache.leaves}
        assert len(nodes) == 4  # tables parallelised across all nodes


class TestQueueOnErrorPolicy:
    def test_queue_survives_error_policy(self):
        # With the queue allocated in one block it stays on one node, so
        # faai never crosses nodes; this pins that placement invariant.
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        queue = cluster.far_queue(capacity=32, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        for i in range(100):
            queue.enqueue(producer, i)
            assert queue.dequeue(consumer) == i
        assert producer.metrics.indirection_errors == 0
