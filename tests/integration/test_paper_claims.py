"""Integration tests asserting the paper's quantified claims end to end.

Each test here corresponds to a claim row in DESIGN.md section 1 and an
experiment in EXPERIMENTS.md; benchmarks produce the numbers, these tests
pin the *direction* of every comparison so regressions are caught by CI.
"""

import pytest

from repro import Cluster
from repro.baselines import OneSidedBTree, OneSidedHashMap
from repro.rpc import RpcMap, RpcServer
from repro.workloads import Uniform

NODE_SIZE = 32 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


def lookup_cost(structure, client, keys, **kwargs):
    snapshot = client.metrics.snapshot()
    for key in keys:
        structure.get(client, int(key))
    return client.metrics.delta(snapshot)


class TestClaimC2OneSidedVsRpc:
    """C2: a one-sided structure wins iff it takes ~1 far access per op."""

    def test_traditional_hash_loses_to_rpc_on_round_trips(self, cluster):
        keys = Uniform(1 << 32, seed=1).sample_unique(200)
        table = OneSidedHashMap.create(cluster.allocator, bucket_count=64)
        loader = cluster.client()
        for key in keys:
            table.put(loader, int(key), 1)
        server = RpcServer()
        rpc_map = RpcMap(server)
        for key in keys:
            rpc_map._data[int(key)] = 1

        c_onesided, c_rpc = cluster.client(), cluster.client()
        onesided = lookup_cost(table, c_onesided, keys)
        snapshot = c_rpc.metrics.snapshot()
        for key in keys:
            rpc_map.get(c_rpc, int(key))
        rpc = c_rpc.metrics.delta(snapshot)
        # The strawman needs strictly more round trips than RPC.
        assert onesided.round_trips > rpc.round_trips

    def test_ht_tree_matches_rpc_round_trips(self, cluster):
        keys = Uniform(1 << 32, seed=2).sample_unique(200)
        tree = cluster.ht_tree(bucket_count=8192, max_chain=8)
        client = cluster.client()
        for key in keys:
            tree.put(client, int(key), 1)
        reader = cluster.client()
        tree.get(reader, int(keys[0]))  # warm cache
        cost = lookup_cost(tree, reader, keys)
        # Section 3.1's bar: ~one far access per lookup, like one RPC.
        assert cost.far_accesses <= len(keys) * 1.1


class TestClaimC3PrimitivesSaveRoundTrips:
    """C3: each Fig. 1 primitive removes round trips vs its emulation."""

    def test_indirect_load_halves_accesses(self, cluster):
        client = cluster.client()
        pointer = cluster.allocator.alloc_words(1)
        target = cluster.allocator.alloc_words(1)
        client.write_u64(pointer, target)
        client.write_u64(target, 5)

        snapshot = client.metrics.snapshot()
        addr = client.read_u64(pointer)  # emulation: 2 dependent reads
        client.read_u64(addr)
        emulated = client.metrics.delta(snapshot).far_accesses

        snapshot = client.metrics.snapshot()
        client.load0_u64(pointer)
        primitive = client.metrics.delta(snapshot).far_accesses

        assert emulated == 2 and primitive == 1

    def test_faai_replaces_lock_based_dequeue(self, cluster):
        # Emulated pointer bump + read under a mutex: 5 far accesses
        # (lock CAS, read ptr, write ptr, read item, unlock) vs 1 faai.
        client = cluster.client()
        head = cluster.allocator.alloc_words(1)
        item = cluster.allocator.alloc_words(1)
        lock = cluster.allocator.alloc_words(1)
        client.write_u64(head, item)
        client.write_u64(item, 42)

        snapshot = client.metrics.snapshot()
        client.cas(lock, 0, 1)
        pointer = client.read_u64(head)
        client.write_u64(head, pointer + 8)
        client.read_u64(pointer)
        client.write_u64(lock, 0)
        emulated = client.metrics.delta(snapshot).far_accesses

        client.write_u64(head, item)
        snapshot = client.metrics.snapshot()
        client.faai(head, 8, 8)
        primitive = client.metrics.delta(snapshot).far_accesses

        assert emulated == 5 and primitive == 1

    def test_gather_replaces_n_reads(self, cluster):
        client = cluster.client()
        addrs = [cluster.allocator.alloc_words(1) for _ in range(16)]
        snapshot = client.metrics.snapshot()
        for addr in addrs:
            client.read_u64(addr)
        loop_cost = client.metrics.delta(snapshot).far_accesses

        snapshot = client.metrics.snapshot()
        client.rgather([(addr, 8) for addr in addrs])
        gather_cost = client.metrics.delta(snapshot).far_accesses

        assert loop_cost == 16 and gather_cost == 1

    def test_notification_replaces_polling(self, cluster):
        watcher, writer = cluster.client(), cluster.client()
        flag = cluster.allocator.alloc_words(1)

        # Polling: one far access per probe until the change lands.
        snapshot = watcher.metrics.snapshot()
        for _ in range(20):
            watcher.read_u64(flag)
        polling = watcher.metrics.delta(snapshot).far_accesses

        # Notification: one install, zero probes.
        snapshot = watcher.metrics.snapshot()
        cluster.notifications.notifye(watcher, flag, 1)
        writer.write_u64(flag, 1)
        assert watcher.pending_notifications() == 1
        notified = watcher.metrics.delta(snapshot).far_accesses

        assert polling == 20 and notified == 1


class TestClaimC4CacheScaling:
    """C4: the HT-tree client cache is per-table, not per-item."""

    def test_cache_grows_with_tables_not_items(self, cluster):
        from repro.core.ht_tree import LEAF_BYTES

        tree = cluster.ht_tree(bucket_count=64, max_chain=8)
        client = cluster.client()
        while len(tree) < 2000:
            tree.put(client, len(tree) * 2654435761 % (1 << 48), 1)
        # The cache is exactly one entry per hash table (leaf) — the
        # paper's "tree of 10M nodes indexes 1T items" scaling argument.
        assert tree.cache_bytes(client) == tree.leaf_count() * LEAF_BYTES
        # Each leaf fronts hundreds of items, so the cache footprint is
        # orders of magnitude below the item storage.
        assert tree.cache_bytes(client) * 50 < 2000 * 32

    def test_btree_level_cache_grows_geometrically(self, cluster):
        # The contrast the paper draws: caching tree levels costs O(n).
        tree = OneSidedBTree.create(cluster.allocator, max_keys=5, cache_levels=10)
        client = cluster.client()
        for k in range(2000):
            tree.put(client, k, 1)
        for k in range(0, 2000, 7):
            tree.get(client, k)
        # Caching "most levels" pulled in a large share of all nodes.
        assert tree.cache_bytes(client) > 2000 * 8


class TestClaimC1LatencyHierarchy:
    """C1: far accesses dominate; near accesses are an order cheaper."""

    def test_simulated_time_tracks_far_accesses(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        client.read_u64(addr)
        far_time = client.clock.now_ns
        client.touch_local(1)
        near_delta = client.clock.now_ns - far_time
        assert far_time >= 10 * near_delta
