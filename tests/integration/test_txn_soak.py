"""Randomized transaction soak: serializability + crash atomicity
against a full value oracle.

Every round runs one transfer between random accounts; a randomized
subset of rounds crashes the committing client at a random commit phase
and recovers with a fresh client. The oracle applies a transfer iff the
commit returned *or* recovery rolled it forward — afterwards every
balance must equal the oracle's and the total must be conserved, which
is exactly the all-or-nothing guarantee the commit record provides."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric.errors import FabricError
from repro.fabric.wire import WORD, decode_u64, encode_u64

NODE_SIZE = 8 << 20
ACCOUNTS = 8
OPENING = 64
PHASES = ["before_lock", "after_lock", "after_seal", "mid_writeback"]


class TestTxnSoak:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
        st.integers(min_value=10, max_value=40),  # rounds
    )
    def test_oracle_equivalence_through_crashes(self, seed, rounds):
        import random

        rng = random.Random(seed)
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE, extent_size=64 << 10
        )
        setup = cluster.client("setup")
        space = cluster.txn_space(setup)
        # Spread accounts over several extents so transfers mix
        # single-slot and multi-slot (multi-run) commits.
        cells = []
        for i in range(ACCOUNTS):
            cells.append(cluster.allocator.alloc(WORD + 16))
            if i % 3 == 2:
                cluster.allocator.alloc(64 << 10)
        oracle = [OPENING] * ACCOUNTS
        for addr in cells:
            space.init_cell(setup, addr, encode_u64(OPENING))

        crashes = rollforwards = 0
        for round_no in range(rounds):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randint(1, 16)
            client = cluster.client(f"w{round_no}")
            crash_phase = (
                rng.choice(PHASES) if rng.random() < 0.4 else None
            )
            if crash_phase is not None:

                def hook(at, acting, stop=crash_phase):
                    if at == stop:
                        space.crash_hook = None
                        acting.crash()

                space.crash_hook = hook

            txn = space.begin(client)
            committed = False
            try:
                src_bal = decode_u64(space.read(client, txn, cells[src], WORD))
                dst_bal = decode_u64(space.read(client, txn, cells[dst], WORD))
                moved = min(amount, src_bal)
                space.write(client, txn, cells[src], encode_u64(src_bal - moved))
                space.write(client, txn, cells[dst], encode_u64(dst_bal + moved))
                space.commit(client, txn)
                committed = True
            except FabricError:
                crashes += 1
                space.crash_hook = None
                surgeon = cluster.client(f"surgeon{round_no}")
                report = space.recover(surgeon, client.client_id)
                if report.action == "rollforward":
                    committed = True
                    rollforwards += 1
            if committed:
                oracle[src] -= moved
                oracle[dst] += moved

        auditor = cluster.client("audit")
        balances = [
            decode_u64(auditor.read_verified(addr, WORD)[1]) for addr in cells
        ]
        assert balances == oracle, (
            f"seed={seed} crashes={crashes} rollforwards={rollforwards}"
        )
        assert sum(balances) == ACCOUNTS * OPENING
        # Every version word is unlocked (even) after the dust settles.
        for addr in cells:
            slot = space.slot_for_addr(addr)
            word = decode_u64(auditor.read(space.version_addr(slot), WORD))
            assert word % 2 == 0
