"""Tests for the migration coordinator: live moves, drains, accounting."""

import pytest

from repro import Cluster
from repro.fabric import MigrationWritePolicy
from repro.fabric.errors import (
    AllocationError,
    NodeUnavailableError,
    StaleEpochError,
)
from repro.migration import MigrationCoordinator

NODE_SIZE = 1 << 20  # 4 extents per node at 256 KiB
ES = 256 << 10


def small_cluster(nodes=2, **kwargs):
    return Cluster(node_count=nodes, node_size=NODE_SIZE, **kwargs)


class TestExtentMigration:
    def test_migrate_preserves_data_and_remaps(self):
        cluster = small_cluster()
        client = cluster.client()
        base = cluster.allocator.alloc(4096)
        client.write(base, b"\x5A" * 4096)
        extent = cluster.fabric.extents.extent_of(base)
        spare = cluster.add_node()
        state = cluster.migration.migrate_extent(client, extent, spare)
        assert state.dst_node == spare
        assert cluster.fabric.node_of(base) == spare
        assert client.read(base, 4096) == b"\x5A" * 4096
        assert cluster.fabric.extents.epoch_of(extent) == 2

    def test_copy_charges_exactly_predicted(self):
        cluster = small_cluster()
        client = cluster.client()
        spare = cluster.add_node()
        coordinator = cluster.migration
        predicted = coordinator.predicted_copy_accesses()
        snap = client.metrics.snapshot()
        coordinator.migrate_extent(client, 0, spare)
        delta = client.metrics.delta(snap)
        assert delta.far_accesses == predicted
        assert coordinator.stats.copy_far_accesses == predicted
        assert coordinator.stats.bytes_copied == ES

    def test_stepwise_migration_interleaves_writers(self):
        cluster = small_cluster()
        client = cluster.client()
        writer = cluster.client("writer")
        base = cluster.allocator.alloc(ES)
        spare = cluster.add_node()
        handle = cluster.migration.begin(client, 0, spare)
        writes = []

        def keep_writing():
            offset = len(writes) * 8
            writer.write(base + offset, offset.to_bytes(8, "little"))
            writes.append(offset)

        while not handle.step():
            keep_writing()
        handle.finish()
        assert writes, "the copy must actually interleave rounds"
        for offset in writes:
            assert client.read(base + offset, 8) == offset.to_bytes(8, "little")

    def test_forwarded_write_during_copy_is_never_lost(self):
        cluster = small_cluster()
        client = cluster.client()
        base = cluster.allocator.alloc(ES)
        spare = cluster.add_node()
        handle = cluster.migration.begin(client, 0, spare)
        handle.step()  # copy a prefix
        done = handle.copied_bytes
        assert done > 0
        # Overwrite a word inside the already-copied prefix: must forward.
        client.write(base + 16, b"\xEE" * 8)
        assert cluster.fabric.extents.migration_state(0).forwards == 1
        handle.run()
        assert client.read(base + 16, 8) == b"\xEE" * 8
        assert cluster.migration.stats.forwards == 1

    def test_fence_policy_raises_then_recovers(self):
        cluster = small_cluster()
        client = cluster.client()
        writer = cluster.client("writer")
        base = cluster.allocator.alloc(64)
        spare = cluster.add_node()
        handle = cluster.migration.begin(
            client, 0, spare, policy=MigrationWritePolicy.FENCE
        )
        handle.step()
        with pytest.raises(StaleEpochError):
            writer.write(base, b"\x01" * 8)
        handle.run()
        writer.write(base, b"\x02" * 8)  # post-commit: admitted
        assert client.read(base, 8) == b"\x02" * 8
        assert cluster.migration.stats.fences == 1

    def test_abort_rolls_back_cleanly(self):
        cluster = small_cluster()
        client = cluster.client()
        base = cluster.allocator.alloc(64)
        client.write(base, b"\x77" * 8)
        spare = cluster.add_node()
        handle = cluster.migration.begin(client, 0, spare)
        handle.step()
        handle.abort()
        assert cluster.fabric.node_of(base) == 0
        assert client.read(base, 8) == b"\x77" * 8
        assert cluster.migration.stats.aborts == 1
        free = cluster.fabric.extents.free_slot_count(spare)
        assert free == NODE_SIZE // ES

    def test_word_op_mid_migration_mirrors(self):
        cluster = small_cluster()
        client = cluster.client()
        base = cluster.allocator.alloc(64)
        client.write_u64(base, 5)
        spare = cluster.add_node()
        handle = cluster.migration.begin(client, 0, spare)
        while handle.copied_bytes < ES:  # copy everything, don't commit yet
            handle.step()
        assert client.faa(base, 3) == 5  # mirrored into the staged copy
        handle.finish()
        assert client.read_u64(base) == 8  # served from the new home


class TestPickTarget:
    def test_least_loaded_eligible_node_wins(self):
        cluster = small_cluster(nodes=2)
        spare = cluster.add_node()
        coordinator = cluster.migration
        assert coordinator.pick_target(0) == spare  # only node with slots

    def test_excludes_failed_drained_and_sibling_nodes(self):
        cluster = small_cluster(nodes=2)
        a = cluster.add_node()
        b = cluster.add_node()
        table = cluster.fabric.extents
        table.mark_drained(a)
        table.annotate_replicas("g", 0, ES)          # extent 0 on node 0
        table.annotate_replicas("g", NODE_SIZE, ES)  # sibling on node 1
        # Node 1 is a sibling, node a is drained: only b is eligible.
        assert cluster.migration.pick_target(0) == b
        cluster.fabric.fail_node(b)
        with pytest.raises(AllocationError):
            cluster.migration.pick_target(0)

    def test_sibling_fallback_only_when_nothing_else(self):
        cluster = small_cluster(nodes=2)
        table = cluster.fabric.extents
        spare = cluster.add_node()
        client = cluster.client()
        # Move node 1's extent 4 onto the spare, then make every node but
        # node 0 a sibling home: extent 4 (now on the spare) and extent 5
        # (still on node 1) both carry replicas of extent 0's group.
        cluster.migration.migrate_extent(client, 4, spare)
        table.annotate_replicas("g", 0, ES)
        table.annotate_replicas("g", 4 * ES, ES)
        table.annotate_replicas("g", 5 * ES, ES)
        with pytest.raises(AllocationError):
            cluster.migration.pick_target(0)
        # Fallback relaxes the sibling rule, least-loaded node wins.
        assert (
            cluster.migration.pick_target(0, allow_sibling_fallback=True) == spare
        )


class TestDrain:
    def test_drain_moves_everything_and_retires_node(self):
        cluster = small_cluster(nodes=2)
        client = cluster.client()
        cluster.add_node()
        report = cluster.drain_node(1, client)
        assert report.node == 1
        assert report.extents_moved == NODE_SIZE // ES
        assert cluster.fabric.extents.extents_on_node(1) == []
        assert cluster.fabric.extents.is_drained(1)
        # A drained node is not a migration target.
        with pytest.raises(AllocationError):
            cluster.fabric.extents.alloc_slot(1)

    def test_drain_preserves_bytes_under_concurrent_writer(self):
        cluster = small_cluster(nodes=2)
        client = cluster.client()
        writer = cluster.client("writer")
        cluster.add_node()
        oracle = {}
        step = [0]

        def interleave():
            # One write per copy round, cycling over both nodes' ranges.
            offset = (step[0] * 8) % (2 * NODE_SIZE - 8)
            offset -= offset % 8
            value = step[0].to_bytes(8, "little")
            writer.write(offset, value)
            oracle[offset] = value
            step[0] += 1

        cluster.drain_node(1, client, interleave=interleave)
        assert step[0] >= NODE_SIZE // ES  # at least one write per extent
        for offset, value in oracle.items():
            assert client.read(offset, 8) == value

    def test_drain_dead_node_is_repairs_problem(self):
        cluster = small_cluster(nodes=2)
        client = cluster.client()
        cluster.add_node()
        cluster.fabric.fail_node(1)
        with pytest.raises(NodeUnavailableError):
            cluster.drain_node(1, client)

    def test_drain_without_headroom_fails_loudly(self):
        cluster = small_cluster(nodes=2)
        client = cluster.client()
        with pytest.raises(AllocationError):
            cluster.drain_node(1, client)


class TestCoordinatorConfig:
    def test_chunk_bytes_must_be_word_aligned(self):
        cluster = small_cluster()
        with pytest.raises(ValueError):
            MigrationCoordinator(cluster.fabric, chunk_bytes=100)
        with pytest.raises(ValueError):
            MigrationCoordinator(cluster.fabric, chunks_per_round=0)

    def test_predicted_accesses_scale_with_chunking(self):
        cluster = small_cluster()
        coordinator = MigrationCoordinator(cluster.fabric, chunk_bytes=8192)
        assert coordinator.predicted_copy_accesses() == 2 * (ES // 8192)
        assert coordinator.predicted_copy_accesses(extents=3) == 6 * (ES // 8192)
