"""Tests for the heat-driven rebalancer."""

import pytest

from repro import Cluster
from repro.migration import MigrationCoordinator, Rebalancer

NODE_SIZE = 1 << 20
ES = 256 << 10


def cluster_with_headroom(nodes=2):
    cluster = Cluster(node_count=nodes, node_size=NODE_SIZE)
    spare = cluster.add_node()
    return cluster, spare


class TestPlan:
    def test_no_heat_plans_nothing(self):
        cluster, _ = cluster_with_headroom()
        overloaded, moves = Rebalancer(cluster.migration).plan()
        assert moves == []

    def test_hot_extents_move_off_hottest_node(self):
        cluster, spare = cluster_with_headroom()
        client = cluster.client()
        # Hammer extent 1 (node 0): reads touch heat.
        for _ in range(64):
            client.read(ES + 16, 8)
        overloaded, moves = Rebalancer(cluster.migration, top_k=1).plan()
        assert overloaded == 0
        assert [(m.extent, m.src, m.dst, m.reason) for m in moves] == [
            (1, 0, spare, "heat")
        ]

    def test_plan_is_deterministic(self):
        cluster, _ = cluster_with_headroom()
        client = cluster.client()
        for extent in (0, 1, 5):
            for _ in range(8):
                client.read(extent * ES, 8)
        rebalancer = Rebalancer(cluster.migration)
        assert rebalancer.plan() == rebalancer.plan()

    def test_forward_source_node_preferred_over_spill(self):
        cluster, spare = cluster_with_headroom(nodes=3)
        table = cluster.fabric.extents
        # Extent 0 (node 0) is hot, and node 2 keeps forwarding into it.
        for _ in range(32):
            table.touch(0)
            table.note_forward(0, 2)
        # Node 2 must have headroom for the preference to bind directly.
        client = cluster.client()
        cluster.migration.migrate_extent(client, table.extents_on_node(2)[0], spare)
        overloaded, moves = Rebalancer(cluster.migration, top_k=1).plan()
        assert overloaded == 0
        heat_moves = [m for m in moves if m.reason == "heat"]
        assert heat_moves[0].extent == 0
        assert heat_moves[0].dst == 2  # pointer-side node, not the empty spare

    def test_full_prefer_node_evicts_coldest_first(self):
        cluster, spare = cluster_with_headroom(nodes=2)
        table = cluster.fabric.extents
        for _ in range(32):
            table.touch(0)
            table.note_forward(0, 1)  # node 1 forwards, but node 1 is full
        table.touch(5)  # extent 5 on node 1 is warm; 4,6,7 are cold
        overloaded, moves = Rebalancer(cluster.migration, top_k=1).plan()
        assert [m.reason for m in moves] == ["evict", "heat"]
        evict, heat = moves
        assert evict.src == 1 and evict.dst == spare
        assert evict.extent == 4  # coldest extent on node 1, lowest id
        assert heat == heat.__class__(0, 0, 1, "heat")


class TestRun:
    def test_run_executes_plan_and_reports_heat(self):
        cluster, spare = cluster_with_headroom()
        client = cluster.client()
        for _ in range(16):
            client.read(0, 8)
        report = cluster.rebalance(client, top_k=1)
        assert report.overloaded_node == 0
        assert len(report.moves) == 1
        assert report.moved_heat >= 16
        assert cluster.fabric.node_of(0) == spare
        # Commit reset the heat at the new home: fresh evidence only.
        assert cluster.fabric.extents.heat_of(0) == 0

    def test_rebalance_keeps_data_intact(self):
        cluster, _ = cluster_with_headroom()
        client = cluster.client()
        base = cluster.allocator.alloc(4096)
        payload = bytes(i % 251 for i in range(4096))
        client.write(base, payload)
        for _ in range(32):
            client.read(base, 64)
        cluster.rebalance(client)
        assert client.read(base, 4096) == payload

    def test_top_k_validation(self):
        cluster, _ = cluster_with_headroom()
        with pytest.raises(ValueError):
            Rebalancer(MigrationCoordinator(cluster.fabric), top_k=0)


class TestRegistryHeat:
    """Registry mode: extent heat comes from the live telemetry plane
    instead of the extent table's translate-time counters."""

    def _observed_client(self, cluster, name="observer"):
        from repro.obs import TelemetryRegistry, Tracer

        client = cluster.client(name)
        tracer = Tracer()
        tracer.attach(client)
        return client, TelemetryRegistry().observe(tracer)

    def test_registry_heat_drives_the_plan(self):
        cluster, spare = cluster_with_headroom()
        client, registry = self._observed_client(cluster)
        for _ in range(64):
            client.read(ES + 16, 8)
        # Erase the table's own evidence: only the registry remembers.
        table = cluster.fabric.extents
        for extent in range(table.extent_count):
            table.reset_heat(extent)
        assert table.heat_of(1) == 0
        bare = Rebalancer(cluster.migration, top_k=1)
        assert bare.plan()[1] == []  # table mode sees nothing
        observed = Rebalancer(cluster.migration, top_k=1, registry=registry)
        overloaded, moves = observed.plan()
        assert overloaded == 0
        assert [(m.extent, m.src, m.dst, m.reason) for m in moves] == [
            (1, 0, spare, "heat")
        ]

    def test_run_reports_registry_heat(self):
        cluster, spare = cluster_with_headroom()
        client, registry = self._observed_client(cluster)
        for _ in range(16):
            client.read(0, 8)
        report = Rebalancer(
            cluster.migration, top_k=1, registry=registry
        ).run(client)
        assert len(report.moves) == 1
        assert report.moved_heat >= 16
        assert cluster.fabric.node_of(0) == spare

    def test_registry_and_table_rank_alike(self):
        """Same traffic, same hottest extent, whichever plane measures."""
        cluster, _ = cluster_with_headroom()
        client, registry = self._observed_client(cluster)
        for extent, touches in ((0, 4), (1, 12), (5, 2)):
            for _ in range(touches):
                client.read(extent * ES, 8)
        table = cluster.fabric.extents
        table_rank = sorted(
            (0, 1, 5), key=lambda e: -table.heat_of(e)
        )
        registry_rank = sorted(
            (0, 1, 5), key=lambda e: -registry.extent_heat(e)
        )
        assert table_rank == registry_rank

    def test_cluster_rebalance_forwards_registry_kwarg(self):
        cluster, spare = cluster_with_headroom()
        client, registry = self._observed_client(cluster)
        for _ in range(32):
            client.read(ES + 16, 8)
        for extent in range(cluster.fabric.extents.extent_count):
            cluster.fabric.extents.reset_heat(extent)
        report = cluster.rebalance(client, top_k=1, registry=registry)
        assert [(m.extent, m.dst) for m in report.moves] == [(1, spare)]
