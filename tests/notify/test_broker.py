"""Unit tests for publish-subscribe brokers (section 7.2)."""

import pytest

from repro import Cluster
from repro.fabric.wire import WORD
from repro.notify.broker import Broker, BrokerNetwork
from repro.notify.subscription import NotifyKind

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestBroker:
    def test_fans_out_to_all_attached(self, cluster):
        broker = Broker(cluster.notifications)
        a = cluster.allocator.alloc_words(1)
        ends = [cluster.client(f"p{i}") for i in range(5)]
        for end in ends:
            broker.attach(end, a, WORD)
        cluster.client("writer").write_u64(a, 1)
        assert all(e.pending_notifications() == 1 for e in ends)
        assert broker.stats.messages_in == 1
        assert broker.stats.messages_out == 5
        assert broker.stats.amplification() == 5.0

    def test_one_hardware_subscription_per_topic(self, cluster):
        broker = Broker(cluster.notifications)
        a = cluster.allocator.alloc_words(1)
        for i in range(10):
            broker.attach(cluster.client(f"p{i}"), a, WORD)
        assert cluster.notifications.hardware_subscriptions == 1
        assert broker.stats.topics == 1

    def test_copies_are_independent(self, cluster):
        broker = Broker(cluster.notifications)
        a = cluster.allocator.alloc_words(1)
        e1, e2 = cluster.client(), cluster.client()
        broker.attach(e1, a, WORD)
        broker.attach(e2, a, WORD)
        cluster.client().write_u64(a, 1)
        n1 = e1.poll_notifications()[0]
        n2 = e2.poll_notifications()[0]
        n1.is_false_positive = True
        assert not n2.is_false_positive

    def test_detach_drops_hardware_sub_when_empty(self, cluster):
        broker = Broker(cluster.notifications)
        a = cluster.allocator.alloc_words(1)
        end = cluster.client()
        sub = broker.attach(end, a, WORD)
        broker.detach(end, sub)
        assert cluster.notifications.hardware_subscriptions == 0
        cluster.client().write_u64(a, 1)
        assert end.pending_notifications() == 0

    def test_notifye_topics(self, cluster):
        broker = Broker(cluster.notifications)
        a = cluster.allocator.alloc_words(1)
        end = cluster.client()
        broker.attach(end, a, WORD, kind=NotifyKind.NOTIFYE, value=0)
        writer = cluster.client()
        writer.write_u64(a, 5)
        assert end.pending_notifications() == 0
        writer.write_u64(a, 0)
        assert end.pending_notifications() == 1


class TestBrokerNetwork:
    def test_hardware_subscribers_bounded_by_broker_count(self, cluster):
        network = BrokerNetwork.create(cluster.notifications, broker_count=4)
        base = cluster.allocator.alloc_words(64)
        processes = [cluster.client(f"proc{i}") for i in range(32)]
        for i, process in enumerate(processes):
            network.attach(process, base + (i % 16) * WORD, WORD)
        # 32 processes, 16 topics, but at most 4 hardware subscribers.
        assert network.hardware_subscriber_count() <= 4

    def test_stable_topic_placement(self, cluster):
        network = BrokerNetwork.create(cluster.notifications, broker_count=3)
        addr = cluster.allocator.alloc_words(1)
        assert network.broker_for(addr) is network.broker_for(addr)

    def test_fanout_traffic_counted(self, cluster):
        network = BrokerNetwork.create(cluster.notifications, broker_count=2)
        a = cluster.allocator.alloc_words(1)
        for i in range(6):
            network.attach(cluster.client(f"w{i}"), a, WORD)
        cluster.client().write_u64(a, 9)
        assert network.total_messages_out() == 6

    def test_create_validates(self, cluster):
        with pytest.raises(ValueError):
            BrokerNetwork.create(cluster.notifications, broker_count=0)
