"""Unit + property tests for subscription coarsening (section 7.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric.address import PAGE_SIZE, page_of
from repro.fabric.wire import WORD
from repro.notify.coarsening import merge_ranges, subscribe_coarsened

NODE_SIZE = 8 << 20


class TestMergeRanges:
    def test_adjacent_ranges_merge(self):
        assert merge_ranges([(0, 8), (8, 8)], max_gap=0) == [(0, 16)]

    def test_gap_within_threshold_merges(self):
        assert merge_ranges([(0, 8), (24, 8)], max_gap=16) == [(0, 32)]

    def test_gap_beyond_threshold_stays_split(self):
        assert merge_ranges([(0, 8), (64, 8)], max_gap=8) == [(0, 8), (64, 8)]

    def test_never_merges_across_pages(self):
        ranges = [(PAGE_SIZE - 8, 8), (PAGE_SIZE, 8)]
        assert merge_ranges(ranges, max_gap=PAGE_SIZE) == ranges

    def test_overlapping_ranges_collapse(self):
        assert merge_ranges([(0, 16), (8, 16)], max_gap=0) == [(0, 24)]

    def test_unsorted_input(self):
        assert merge_ranges([(32, 8), (0, 8), (8, 8)], max_gap=0) == [(0, 16), (32, 8)]

    def test_unaligned_input_normalised(self):
        merged = merge_ranges([(4, 4)], max_gap=0)
        assert merged == [(0, 8)]

    def test_empty(self):
        assert merge_ranges([], max_gap=8) == []

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            merge_ranges([(0, 8)], max_gap=-1)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=PAGE_SIZE // WORD - 2),
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=256),
    )
    def test_merge_invariants(self, word_ranges, max_gap):
        # Keep everything within one page so the no-page-crossing rule is
        # exercised separately.
        ranges = [
            (w * WORD, min(n * WORD, PAGE_SIZE - w * WORD)) for w, n in word_ranges
        ]
        merged = merge_ranges(ranges, max_gap=max_gap)
        # Sorted, non-overlapping, and gaps larger than max_gap.
        for (a, la), (b, _) in zip(merged, merged[1:]):
            assert a + la <= b
            if page_of(a) == page_of(b):
                assert b - (a + la) > max_gap
        # Coverage: every original range is inside some merged range.
        for addr, length in ranges:
            assert any(
                m_addr <= addr and addr + length <= m_addr + m_len
                for m_addr, m_len in merged
            )
        # Never more merged ranges than inputs.
        assert len(merged) <= len(ranges)


class TestCoarsenedSubscriber:
    @pytest.fixture
    def cluster(self):
        return Cluster(node_count=1, node_size=NODE_SIZE)

    def test_saves_hardware_subscriptions(self, cluster):
        client = cluster.client()
        base = cluster.allocator.alloc(PAGE_SIZE, None)
        # 8 fine ranges, close together: should coarsen to far fewer subs.
        fine = [(base + i * 64, WORD) for i in range(8)]
        filt, subs = subscribe_coarsened(
            cluster.notifications, client, fine, max_gap=128
        )
        assert len(subs) < len(fine)
        assert filt.stats.subscription_savings() > 0

    def test_true_positive_passes_through(self, cluster):
        client = cluster.client()
        writer = cluster.client()
        base = cluster.allocator.alloc(1024, None)
        fine = [(base, WORD), (base + 64, WORD)]
        filt, _ = subscribe_coarsened(cluster.notifications, client, fine, max_gap=128)
        writer.write_u64(base + 64, 1)
        ns = client.poll_notifications()
        assert len(ns) == 1
        assert not ns[0].is_false_positive
        assert filt.stats.true_positives == 1

    def test_false_positive_is_tagged(self, cluster):
        client = cluster.client()
        writer = cluster.client()
        base = cluster.allocator.alloc(1024, None)
        fine = [(base, WORD), (base + 128, WORD)]
        filt, _ = subscribe_coarsened(cluster.notifications, client, fine, max_gap=256)
        writer.write_u64(base + 64, 1)  # inside the coarse range, outside fine
        ns = client.poll_notifications()
        assert len(ns) == 1
        assert ns[0].is_false_positive
        assert filt.stats.false_positives == 1
        assert filt.stats.false_positive_rate() == 1.0

    def test_write_outside_coarse_range_silent(self, cluster):
        client = cluster.client()
        writer = cluster.client()
        base = cluster.allocator.alloc(4096)
        fine = [(base, WORD)]
        subscribe_coarsened(cluster.notifications, client, fine, max_gap=0)
        writer.write_u64(base + 512, 1)
        assert client.pending_notifications() == 0
