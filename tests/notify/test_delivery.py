"""Unit tests for best-effort delivery policies (section 7.2)."""

import pytest

from repro.notify.delivery import DeliveryEngine, DeliveryPolicy, RELIABLE
from repro.notify.subscription import Notification, NotifyKind, Subscription


class _Sink:
    def __init__(self):
        self.received = []

    def deliver(self, notification):
        self.received.append(notification)


def make_sub(sink, sub_id=1):
    return Subscription(sub_id, sink, NotifyKind.NOTIFY0, 0, 8)


def make_notification(seq):
    return Notification(1, NotifyKind.NOTIFY0, 0, 8, seq=seq)


class TestReliable:
    def test_everything_delivered(self):
        sink = _Sink()
        sub = make_sub(sink)
        engine = DeliveryEngine(RELIABLE)
        for i in range(10):
            assert engine.offer(sub, make_notification(i))
        assert len(sink.received) == 10
        assert engine.stats.loss_rate() == 0.0


class TestCoalescing:
    def test_every_nth_delivered(self):
        sink = _Sink()
        sub = make_sub(sink)
        engine = DeliveryEngine(DeliveryPolicy(coalesce_every=3))
        for i in range(9):
            engine.offer(sub, make_notification(i))
        assert len(sink.received) == 3
        assert all(n.coalesced_count == 3 for n in sink.received)
        assert engine.stats.coalesced_away == 6

    def test_coalesced_events_are_represented_not_lost(self):
        engine = DeliveryEngine(DeliveryPolicy(coalesce_every=4))
        sub = make_sub(_Sink())
        for i in range(8):
            engine.offer(sub, make_notification(i))
        assert engine.stats.loss_rate() == 0.0

    def test_independent_per_subscription(self):
        engine = DeliveryEngine(DeliveryPolicy(coalesce_every=2))
        a_sink, b_sink = _Sink(), _Sink()
        a, b = make_sub(a_sink, 1), make_sub(b_sink, 2)
        engine.offer(a, make_notification(1))
        engine.offer(a, make_notification(2))  # delivered (2nd for a)
        engine.offer(b, make_notification(3))  # suppressed (1st for b)
        assert len(a_sink.received) == 1
        assert len(b_sink.received) == 0


class TestRandomDrop:
    def test_seeded_drop_is_deterministic(self):
        def run():
            sink = _Sink()
            sub = make_sub(sink)
            engine = DeliveryEngine(DeliveryPolicy(drop_probability=0.5, seed=42))
            for i in range(100):
                engine.offer(sub, make_notification(i))
            return [n.seq for n in sink.received if not n.is_loss_warning]

        assert run() == run()

    def test_drop_rate_roughly_matches(self):
        sink = _Sink()
        sub = make_sub(sink)
        engine = DeliveryEngine(DeliveryPolicy(drop_probability=0.3, seed=7))
        for i in range(1000):
            engine.offer(sub, make_notification(i))
        rate = engine.stats.dropped_random / 1000
        assert 0.2 < rate < 0.4

    def test_loss_followed_by_warning(self):
        sink = _Sink()
        sub = make_sub(sink)
        engine = DeliveryEngine(DeliveryPolicy(drop_probability=0.5, seed=1))
        for i in range(50):
            engine.offer(sub, make_notification(i))
        warnings = [n for n in sink.received if n.is_loss_warning]
        assert warnings, "some delivery after a drop must carry the warning"
        assert all(w.lost_count >= 1 for w in warnings)


class TestTokenBucket:
    def test_spike_dropped_then_warned(self):
        sink = _Sink()
        sub = make_sub(sink)
        engine = DeliveryEngine(DeliveryPolicy(bucket_capacity=3, bucket_refill=3))
        for i in range(10):  # burst of 10, bucket holds 3
            engine.offer(sub, make_notification(i))
        assert len(sink.received) == 3
        assert engine.stats.dropped_bucket == 7
        engine.tick()  # refill period
        engine.offer(sub, make_notification(100))
        last = sink.received[-1]
        assert last.is_loss_warning
        assert last.lost_count == 7

    def test_tick_caps_at_capacity(self):
        engine = DeliveryEngine(DeliveryPolicy(bucket_capacity=2, bucket_refill=10))
        sub = make_sub(_Sink())
        engine.offer(sub, make_notification(0))
        engine.tick()
        engine.tick()
        state = engine._state[sub.sub_id]
        assert state.tokens == 2

    def test_pending_loss_visible(self):
        engine = DeliveryEngine(DeliveryPolicy(bucket_capacity=1, bucket_refill=1))
        sink = _Sink()
        sub = make_sub(sink)
        engine.offer(sub, make_notification(0))
        engine.offer(sub, make_notification(1))  # dropped
        assert engine.pending_loss(sub) == 1


class TestPolicyValidation:
    def test_reliable_flag(self):
        assert RELIABLE.reliable
        assert not DeliveryPolicy(coalesce_every=2).reliable
        assert not DeliveryPolicy(drop_probability=0.1).reliable
        assert not DeliveryPolicy(bucket_capacity=5).reliable

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DeliveryPolicy(coalesce_every=0)
        with pytest.raises(ValueError):
            DeliveryPolicy(drop_probability=1.5)
        with pytest.raises(ValueError):
            DeliveryPolicy(bucket_capacity=0)

    def test_forget_clears_state(self):
        engine = DeliveryEngine(DeliveryPolicy(coalesce_every=2))
        sub = make_sub(_Sink())
        engine.offer(sub, make_notification(0))
        engine.forget(sub)
        assert sub.sub_id not in engine._state
