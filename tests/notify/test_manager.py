"""Unit tests for the notification manager (matching semantics)."""

import pytest

from repro import Cluster
from repro.fabric.wire import WORD, decode_u64
from repro.notify.subscription import NotifyKind

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def watcher(cluster):
    return cluster.client("watcher")


@pytest.fixture
def writer(cluster):
    return cluster.client("writer")


class TestNotify0:
    def test_write_in_range_notifies(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(4)
        cluster.notifications.notify0(watcher, a, 32)
        writer.write_u64(a + 8, 1)
        ns = watcher.poll_notifications()
        assert len(ns) == 1
        assert ns[0].kind is NotifyKind.NOTIFY0
        assert ns[0].address == a + 8

    def test_write_outside_range_is_silent(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(8)
        cluster.notifications.notify0(watcher, a, 16)
        writer.write_u64(a + 32, 1)
        assert watcher.pending_notifications() == 0

    def test_atomics_trigger_notifications(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(watcher, a, WORD)
        writer.faa(a, 1)
        writer.swap(a, 5)
        writer.cas(a, 5, 6)
        assert watcher.pending_notifications() == 3

    def test_failed_cas_does_not_notify(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(watcher, a, WORD)
        writer.cas(a, 99, 1)  # expected mismatch
        assert watcher.pending_notifications() == 0

    def test_straddling_write_clips_to_subscription(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(8)
        cluster.notifications.notify0(watcher, a + 16, 16)
        writer.write(a, b"\xff" * 64)
        ns = watcher.poll_notifications()
        assert len(ns) == 1
        assert ns[0].address == a + 16
        assert ns[0].length == 16

    def test_installing_subscription_costs_one_far_access(self, cluster, watcher):
        a = cluster.allocator.alloc_words(1)
        before = watcher.metrics.far_accesses
        cluster.notifications.notify0(watcher, a, WORD)
        assert watcher.metrics.far_accesses == before + 1


class TestNotifye:
    def test_fires_only_on_matching_value(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notifye(watcher, a, 0)
        writer.write_u64(a, 5)  # not zero: no notification
        assert watcher.pending_notifications() == 0
        writer.write_u64(a, 0)  # zero: fires
        ns = watcher.poll_notifications()
        assert len(ns) == 1
        assert ns[0].matched_value == 0

    def test_mutex_release_pattern(self, cluster, watcher, writer):
        # Section 5.1: waiters arm notifye(lock, 0) and learn of release.
        lock = cluster.allocator.alloc_words(1)
        writer.cas(lock, 0, 1)  # acquire
        cluster.notifications.notifye(watcher, lock, 0)
        writer.write_u64(lock, 0)  # release
        assert watcher.pending_notifications() == 1

    def test_word_covered_by_larger_write(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(4)
        cluster.notifications.notifye(watcher, a + 8, 7)
        data = b"\x00" * 8 + (7).to_bytes(8, "little") + b"\x00" * 16
        writer.write(a, data)
        assert watcher.pending_notifications() == 1


class TestNotify0d:
    def test_carries_changed_data(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(2)
        cluster.notifications.notify0d(watcher, a, 16)
        writer.write_u64(a + 8, 0xBEEF)
        ns = watcher.poll_notifications()
        assert len(ns) == 1
        assert decode_u64(ns[0].data) == 0xBEEF
        assert ns[0].address == a + 8


class TestLifecycle:
    def test_unsubscribe_stops_notifications(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        sub = cluster.notifications.notify0(watcher, a, WORD)
        writer.write_u64(a, 1)
        cluster.notifications.unsubscribe(sub)
        writer.write_u64(a, 2)
        assert watcher.pending_notifications() == 1

    def test_hardware_subscription_count(self, cluster, watcher):
        a = cluster.allocator.alloc_words(4)
        subs = [
            cluster.notifications.notify0(watcher, a + i * 8, WORD) for i in range(3)
        ]
        assert cluster.notifications.hardware_subscriptions == 3
        cluster.notifications.unsubscribe(subs[0])
        assert cluster.notifications.hardware_subscriptions == 2

    def test_mute_suppresses_matching(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(watcher, a, WORD)
        cluster.notifications.mute()
        writer.write_u64(a, 1)
        cluster.notifications.mute(False)
        writer.write_u64(a, 2)
        assert watcher.pending_notifications() == 1

    def test_multiple_subscribers_same_range(self, cluster, writer):
        a = cluster.allocator.alloc_words(1)
        watchers = [cluster.client(f"w{i}") for i in range(3)]
        for w in watchers:
            cluster.notifications.notify0(w, a, WORD)
        writer.write_u64(a, 1)
        assert all(w.pending_notifications() == 1 for w in watchers)

    def test_stats(self, cluster, watcher, writer):
        a = cluster.allocator.alloc_words(1)
        cluster.notifications.notifye(watcher, a, 3)
        writer.write_u64(a, 1)
        writer.write_u64(a, 3)
        stats = cluster.notifications.stats
        assert stats.notifye_checks == 2
        assert stats.notifye_hits == 1
        assert stats.matches == 1
