"""Property-based tests for notification matching.

Invariant (section 4.3): with reliable delivery, a subscriber receives a
notification **iff** a write overlapped its range — no false negatives,
no spurious matches — for arbitrary subscription layouts and write
patterns within a page.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.fabric.address import PAGE_SIZE
from repro.fabric.wire import WORD

NODE_SIZE = 8 << 20

WORDS_PER_PAGE = PAGE_SIZE // WORD

subscriptions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=WORDS_PER_PAGE - 1),  # start word
        st.integers(min_value=1, max_value=8),  # word count
    ),
    min_size=1,
    max_size=6,
)

writes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=WORDS_PER_PAGE - 1),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=12,
)


class TestMatchingInvariant:
    @settings(max_examples=60, deadline=None)
    @given(subscriptions, writes)
    def test_notified_iff_overlapped(self, subs, write_ops):
        from repro.alloc import PlacementHint

        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        # One page-aligned page, so section 4.3's page constraint is
        # respected by construction.
        base = cluster.allocator.alloc(PAGE_SIZE, PlacementHint(alignment=PAGE_SIZE))
        watcher = cluster.client()
        writer = cluster.client()

        registered = []
        for start_word, count_words in subs:
            count_words = min(count_words, WORDS_PER_PAGE - start_word)
            sub = cluster.notifications.notify0(
                watcher, base + start_word * WORD, count_words * WORD
            )
            registered.append((sub.sub_id, start_word, count_words))

        expected: dict[int, int] = {}
        for start_word, count_words in write_ops:
            count_words = min(count_words, WORDS_PER_PAGE - start_word)
            writer.write(base + start_word * WORD, b"\x01" * (count_words * WORD))
            for sub_id, s, c in registered:
                if start_word < s + c and s < start_word + count_words:
                    expected[sub_id] = expected.get(sub_id, 0) + 1

        received: dict[int, int] = {}
        for n in watcher.poll_notifications():
            received[n.sub_id] = received.get(n.sub_id, 0) + n.coalesced_count

        assert received == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=WORDS_PER_PAGE - 1),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=10),
    )
    def test_notifye_fires_exactly_on_match(self, watch_word, values):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        from repro.alloc import PlacementHint

        base = cluster.allocator.alloc(PAGE_SIZE, PlacementHint(alignment=PAGE_SIZE))
        watcher, writer = cluster.client(), cluster.client()
        target = base + watch_word * WORD
        cluster.notifications.notifye(watcher, target, 3)
        expected = sum(1 for v in values if v == 3)
        for v in values:
            writer.write_u64(target, v)
        assert watcher.pending_notifications() == expected
