"""Unit tests for subscriptions and notification messages."""

import pytest

from repro.fabric.address import PAGE_SIZE
from repro.fabric.errors import AlignmentError
from repro.notify.subscription import Notification, NotifyKind, Subscription


class _Sink:
    def __init__(self):
        self.received = []

    def deliver(self, notification):
        self.received.append(notification)


class TestSubscriptionValidation:
    def test_valid_notify0(self):
        sub = Subscription(1, _Sink(), NotifyKind.NOTIFY0, 0, 8)
        assert sub.end == 8

    def test_address_must_be_word_aligned(self):
        with pytest.raises(AlignmentError):
            Subscription(1, _Sink(), NotifyKind.NOTIFY0, 4, 8)

    def test_length_must_be_word_multiple(self):
        with pytest.raises(AlignmentError):
            Subscription(1, _Sink(), NotifyKind.NOTIFY0, 0, 12)

    def test_length_must_be_positive(self):
        with pytest.raises(AlignmentError):
            Subscription(1, _Sink(), NotifyKind.NOTIFY0, 0, 0)

    def test_must_not_cross_page_boundary(self):
        # Section 4.3's hardware constraint.
        with pytest.raises(AlignmentError):
            Subscription(1, _Sink(), NotifyKind.NOTIFY0, PAGE_SIZE - 8, 16)

    def test_whole_page_is_allowed(self):
        Subscription(1, _Sink(), NotifyKind.NOTIFY0, PAGE_SIZE, PAGE_SIZE)

    def test_notifye_requires_value(self):
        with pytest.raises(ValueError):
            Subscription(1, _Sink(), NotifyKind.NOTIFYE, 0, 8)

    def test_notifye_watches_one_word(self):
        with pytest.raises(AlignmentError):
            Subscription(1, _Sink(), NotifyKind.NOTIFYE, 0, 16, value=0)

    def test_notify0_rejects_value(self):
        with pytest.raises(ValueError):
            Subscription(1, _Sink(), NotifyKind.NOTIFY0, 0, 8, value=3)


class TestOverlap:
    def test_overlapping_write_matches(self):
        sub = Subscription(1, _Sink(), NotifyKind.NOTIFY0, 64, 16)
        assert sub.overlaps(64, 8)
        assert sub.overlaps(72, 8)
        assert sub.overlaps(56, 16)  # straddles the start

    def test_adjacent_write_does_not_match(self):
        sub = Subscription(1, _Sink(), NotifyKind.NOTIFY0, 64, 16)
        assert not sub.overlaps(80, 8)
        assert not sub.overlaps(56, 8)

    def test_inactive_never_matches(self):
        sub = Subscription(1, _Sink(), NotifyKind.NOTIFY0, 64, 16)
        sub.active = False
        assert not sub.overlaps(64, 8)


class TestNotification:
    def test_size_includes_payload(self):
        plain = Notification(1, NotifyKind.NOTIFY0, 0, 8, seq=1)
        with_data = Notification(1, NotifyKind.NOTIFY0D, 0, 8, seq=2, data=b"x" * 8)
        assert with_data.size_bytes == plain.size_bytes + 8

    def test_str_flags(self):
        n = Notification(
            1, NotifyKind.NOTIFY0, 0, 8, seq=1, is_loss_warning=True, coalesced_count=3
        )
        text = str(n)
        assert "LOSS" in text and "x3" in text
