"""Dashboard renderers: pure functions of registry state, with the facts
an operator needs actually present in the text."""

from __future__ import annotations

from repro import Cluster
from repro.obs import (
    SLOMonitor,
    TelemetryRegistry,
    Tracer,
    render_extents,
    render_fleet,
    render_nodes,
    render_slos,
    render_structures,
    render_top,
)

NODE_SIZE = 8 << 20


def _observed_run():
    cluster = Cluster(node_count=2, node_size=NODE_SIZE)
    client = cluster.client("worker")
    tracer = Tracer()
    tracer.attach(client)
    registry = TelemetryRegistry(window_ns=10_000).observe(tracer)
    monitor = SLOMonitor(registry)
    tree = cluster.ht_tree(bucket_count=128)
    for key in range(64):
        tree.put(client, key, key)
    for key in range(64):
        assert tree.get(client, key) == key
    monitor.finish(client)
    return cluster, client, registry, monitor


def test_render_fleet_shows_totals_and_time():
    _, client, registry, _ = _observed_run()
    text = render_fleet(registry)
    assert "-- fleet --" in text
    assert f"far accesses: {client.metrics.far_accesses} total" in text
    assert "faults: none" in text
    assert "sim time:" in text


def test_render_nodes_lists_every_touched_node():
    _, _, registry, _ = _observed_run()
    text = render_nodes(registry)
    for node in registry.node_ids():
        assert f"node{node}" in text
    assert "ok" in text
    assert "drained" not in text


def test_render_nodes_empty_registry():
    assert "no per-node traffic" in render_nodes(TelemetryRegistry())


def test_render_extents_sorted_and_barred():
    _, _, registry, _ = _observed_run()
    text = render_extents(registry)
    assert "-- extent heat --" in text
    assert "#" in text
    # Hottest-first: heat column values are non-increasing.
    heats = []
    for line in text.splitlines()[3:]:
        if line.startswith("..."):
            continue
        recent = line.split()[3]
        heats.append(float(recent.rstrip("kM")))
    assert heats  # at least one extent saw traffic


def test_render_extents_caps_rows():
    registry = TelemetryRegistry()
    registry._extent_size = 1
    for extent in range(20):
        registry.counter(("extent", extent), "heat").inc(0, extent + 1)
    text = render_extents(registry, max_rows=4)
    assert "and 16 cooler extents" in text


def test_render_structures_names_the_tree():
    _, _, registry, _ = _observed_run()
    text = render_structures(registry)
    assert "httree" in text


def test_render_structures_empty_is_blank():
    assert render_structures(TelemetryRegistry()) == ""


def test_render_slos_shows_objectives_and_state():
    _, _, registry, monitor = _observed_run()
    text = render_slos(monitor)
    assert "timeout-ratio" in text
    assert "ok" in text
    assert "FIRING" not in text


def test_render_top_composes_all_sections():
    _, _, registry, monitor = _observed_run()
    text = render_top(registry, monitor)
    assert text.startswith("== repro top @")
    for section in ("-- fleet --", "-- nodes --", "-- extent heat --",
                    "-- structures --", "-- SLOs --"):
        assert section in text


def test_render_top_without_monitor_skips_slos():
    _, _, registry, _ = _observed_run()
    text = render_top(registry)
    assert "-- SLOs --" not in text
