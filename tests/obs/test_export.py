"""Exporter tests: JSONL stream, Chrome trace schema, tamper detection."""

import copy
import io
import json

import pytest

from repro import Cluster
from repro.obs import (
    Tracer,
    assert_valid_chrome_trace,
    chrome_trace,
    iter_jsonl_records,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _traced_run():
    """A small pipelined workload with nested spans, finished and ready
    to export."""
    cluster = Cluster(node_count=2, node_size=8 << 20)
    client = cluster.client("worker", qp_depth=8)
    tracer = Tracer()
    tracer.attach(client)
    tree = cluster.ht_tree(bucket_count=128)
    with tracer.span(client, "load"):
        for key in range(16):
            tree.put(client, key, key * 2)
    with tracer.span(client, "lookup"):
        assert tree.multiget(client, list(range(16))) == [
            key * 2 for key in range(16)
        ]
    tracer.finish()
    return client, tracer


class TestJsonl:
    def test_stream_shape(self):
        _, tracer = _traced_run()
        records = iter_jsonl_records(tracer)
        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == "repro-trace-v1"
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        assert meta["spans"] == len(spans) == len(tracer.all_spans())
        assert meta["events"] == len(events) == len(tracer.events)
        # Span records carry the causality and accounting fields.
        by_label = {r["label"]: r for r in spans}
        assert by_label["load"]["parent_id"] == by_label["client:worker"]["span_id"]
        # Direct attribution goes to the innermost structure-op spans;
        # the phase span keeps the inclusive delta.
        assert by_label["httree.put"]["far_accesses"] > 0
        assert by_label["load"]["delta"]["far_accesses"] > 0
        assert by_label["load"]["children"] > 0
        # Event records are flat and span-attributed.
        assert all("kind" in r and "span_id" in r and "ts_ns" in r for r in events)

    def test_write_is_line_delimited_json(self, tmp_path):
        _, tracer = _traced_run()
        buffer = io.StringIO()
        count = write_jsonl(buffer, tracer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == count
        parsed = [json.loads(line) for line in lines]
        assert parsed == iter_jsonl_records(tracer)

        path = tmp_path / "run.trace.jsonl"
        assert write_jsonl(str(path), tracer) == count
        assert len(path.read_text().splitlines()) == count


class TestChromeTrace:
    def test_export_is_schema_valid(self):
        _, tracer = _traced_run()
        document = chrome_trace(tracer)
        assert validate_chrome_trace(document) == []
        assert_valid_chrome_trace(document)  # must not raise
        assert document["displayTimeUnit"] == "ns"

    def test_lanes_and_phases(self):
        client, tracer = _traced_run()
        events = chrome_trace(tracer)["traceEvents"]
        names = [
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        ]
        # Spans lane, windows lane, and at least one qp lane, all named
        # after the client.
        assert "worker spans" in names
        assert "worker windows" in names
        assert any(name.startswith("worker qp") for name in names)

        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == len(tracer.all_spans())
        labels = {e["name"] for e in begins}
        assert {"client:worker", "load", "lookup"} <= labels

        windows = [
            e for e in events if e["ph"] == "X" and "reason" in e.get("args", {})
        ]
        assert windows
        # Window slices carry the overlap accounting; member-op slices on
        # the qp lanes point back at their spans.
        for window in windows:
            assert window["args"]["charged_ns"] <= window["args"]["serial_ns"]
        qp_slices = [
            e for e in events if e["ph"] == "X" and "charge_ns" in e.get("args", {})
        ]
        assert sum(1 for _ in qp_slices) == client.metrics.pipeline_ops

    def test_open_spans_synthesize_end_events(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("live")
        tracer = Tracer()
        tracer.attach(client)
        counter = cluster.far_counter()
        counter.increment(client)
        # No finish(): the root span is still open at export time, so the
        # exporter synthesizes its E at the client's current clock.
        document = chrome_trace(tracer)
        assert validate_chrome_trace(document) == []
        ends = [e for e in document["traceEvents"] if e["ph"] == "E"]
        assert [e["name"] for e in ends] == ["client:live"]
        assert ends[0]["ts"] == client.clock.now_ns / 1_000.0

    def test_write_and_load_roundtrip(self, tmp_path):
        _, tracer = _traced_run()
        path = tmp_path / "run.trace.json"
        document = write_chrome_trace(str(path), tracer)
        assert load_chrome_trace(str(path)) == document


class TestValidation:
    @pytest.fixture()
    def document(self):
        _, tracer = _traced_run()
        return chrome_trace(tracer)

    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) == [
            "document must be a dict with a 'traceEvents' list"
        ]
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_detects_dropped_end(self, document):
        tampered = copy.deepcopy(document)
        index = next(
            i for i, e in enumerate(tampered["traceEvents"]) if e["ph"] == "E"
        )
        del tampered["traceEvents"][index]
        problems = validate_chrome_trace(tampered)
        assert any("never closed" in p for p in problems)
        with pytest.raises(ValueError):
            assert_valid_chrome_trace(tampered)

    def test_detects_name_mismatch(self, document):
        tampered = copy.deepcopy(document)
        end = next(e for e in tampered["traceEvents"] if e["ph"] == "E")
        end["name"] = "imposter"
        problems = validate_chrome_trace(tampered)
        assert any("does not match open B" in p for p in problems)

    def test_detects_backwards_timestamps(self, document):
        tampered = copy.deepcopy(document)
        last_b = [e for e in tampered["traceEvents"] if e["ph"] == "B"][-1]
        last_b["ts"] = -1.0
        problems = validate_chrome_trace(tampered)
        assert any("goes backwards" in p for p in problems)

    def test_detects_negative_duration(self, document):
        tampered = copy.deepcopy(document)
        slice_event = next(
            e for e in tampered["traceEvents"] if e["ph"] == "X"
        )
        slice_event["dur"] = -1.0
        problems = validate_chrome_trace(tampered)
        assert any("non-negative dur" in p for p in problems)

    def test_detects_malformed_events(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "no-ph"},
                    {"ph": "Z", "pid": 1, "tid": 0, "ts": 0},
                    {"ph": "B", "name": "a", "ts": 0},
                    {"ph": "i", "pid": 1, "tid": 0},
                    {"ph": "E", "pid": 1, "tid": 9, "ts": 0},
                ]
            }
        )
        assert len(problems) == 5
        assert any("not a dict with 'ph'" in p for p in problems)
        assert any("unsupported phase" in p for p in problems)
        assert any("missing pid/tid" in p for p in problems)
        assert any("missing numeric ts" in p for p in problems)
        assert any("E with no open B" in p for p in problems)


class TestTelemetryExports:
    """Prometheus text + telemetry JSONL over a live registry."""

    @pytest.fixture()
    def registry(self):
        from repro.obs import SLOMonitor, TelemetryRegistry

        cluster = Cluster(node_count=2, node_size=8 << 20)
        client = cluster.client("worker")
        tracer = Tracer()
        tracer.attach(client)
        registry = TelemetryRegistry(window_ns=10_000).observe(tracer)
        monitor = SLOMonitor(registry)
        tree = cluster.ht_tree(bucket_count=64)
        for key in range(32):
            tree.put(client, key, key)
        registry.sample_client(client)
        monitor.finish(client)
        self.client = client
        return registry

    def test_prometheus_text_shape(self, registry):
        from repro.obs import prometheus_text

        text = prometheus_text(registry)
        lines = text.splitlines()
        # TYPE headers precede their samples, one per metric name.
        assert "# TYPE repro_far_accesses_total counter" in lines
        assert "# TYPE repro_far_latency_ns summary" in lines
        assert (
            f'repro_far_accesses_total{{scope="fleet"}} '
            f"{self.client.metrics.far_accesses}" in lines
        )
        # Scoped labels: client + node + structure variants all present.
        assert any(
            line.startswith('repro_far_accesses_total{scope="client",client="worker"}')
            for line in lines
        )
        assert any('scope="node",node="' in line for line in lines)
        assert any('scope="structure",structure="httree"' in line for line in lines)
        # Summaries carry quantile/sum/count triads.
        assert any('quantile="0.99"' in line for line in lines)
        assert any(line.startswith("repro_far_latency_ns_sum") for line in lines)
        assert any(line.startswith("repro_far_latency_ns_count") for line in lines)
        # Sampled client gauges export with sanitized names.
        assert any(
            line.startswith("repro_metrics_far_accesses{") for line in lines
        )
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        from repro.obs import TelemetryRegistry, prometheus_text

        assert prometheus_text(TelemetryRegistry()) == ""

    def test_write_prometheus_counts_samples(self, registry, tmp_path):
        from repro.obs import prometheus_text, write_prometheus

        path = tmp_path / "snap.prom"
        count = write_prometheus(str(path), registry)
        text = path.read_text()
        assert text == prometheus_text(registry)
        samples = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert len(samples) == count > 0

    def test_telemetry_jsonl_roundtrip(self, registry, tmp_path):
        from repro.obs import telemetry_records, write_telemetry_jsonl

        path = tmp_path / "snap.metrics.jsonl"
        count = write_telemetry_jsonl(str(path), registry)
        lines = path.read_text().splitlines()
        assert len(lines) == count
        parsed = [json.loads(line) for line in lines]
        records = telemetry_records(registry)
        assert len(parsed) == len(records)
        meta = parsed[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == "repro-telemetry-v1"
        assert meta["window_ns"] == registry.window_ns
        by_kind = {}
        for record in parsed[1:]:
            assert record["type"] == "series"
            by_kind.setdefault(record["series"], []).append(record)
        assert set(by_kind) == {"counter", "gauge", "histogram"}
        fleet_far = next(
            r
            for r in by_kind["counter"]
            if r["scope"] == {"kind": "fleet"} and r["name"] == "far_accesses"
        )
        assert fleet_far["total"] == self.client.metrics.far_accesses
        # Window lists replay the total exactly.
        assert sum(v for _w, v in fleet_far["windows"]) == fleet_far["total"]
        hist = next(
            r
            for r in by_kind["histogram"]
            if r["scope"] == {"kind": "fleet"} and r["name"] == "far_latency_ns"
        )
        assert hist["summary"]["count"] == self.client.metrics.far_accesses
