"""Unit tests for the shared latency histograms (repro.obs.histogram)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import HistogramSet, LatencyHistogram


def _reference_percentile(samples, fraction):
    """The nearest-rank definition the benchmarks used before the shared
    histogram existed — recorded EXPERIMENTS.md numbers depend on it."""
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.p50 == hist.p90 == hist.p99 == 0.0
        assert hist.max_ns == hist.min_ns == hist.mean_ns == 0.0
        assert hist.buckets() == []
        assert hist.render() == "(no samples)"

    def test_negative_sample_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1.0)

    def test_percentiles_match_legacy_definition(self):
        samples = [100, 1000, 1050, 2000, 950, 100, 100, 4000, 150, 1000]
        hist = LatencyHistogram(samples)
        for fraction in (0.0, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert hist.percentile(fraction) == _reference_percentile(
                samples, fraction
            )

    def test_percentile_fraction_range(self):
        hist = LatencyHistogram([1.0])
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.1)

    def test_log2_buckets_split_near_and_far_tiers(self):
        # The paper's O(100 ns) near tier and O(1 us) far tier land in
        # distinct log2 buckets: [64, 128) vs [512, 1024).
        hist = LatencyHistogram([100, 100, 1000, 0])
        assert hist.buckets() == [
            (0.0, 1.0, 1),
            (64.0, 128.0, 2),
            (512.0, 1024.0, 1),
        ]

    def test_bucket_edges_are_half_open(self):
        hist = LatencyHistogram([64, 127, 128])
        assert hist.buckets() == [(64.0, 128.0, 2), (128.0, 256.0, 1)]

    def test_merge(self):
        a = LatencyHistogram([100, 200])
        b = LatencyHistogram([1000])
        a.merge(b)
        assert a.count == 3
        assert a.total_ns == 1300
        assert a.max_ns == 1000
        assert b.count == 1  # source unchanged

    def test_summary_keys(self):
        summary = LatencyHistogram([100, 1000]).summary()
        assert set(summary) == {
            "count",
            "p50_ns",
            "p90_ns",
            "p99_ns",
            "max_ns",
            "mean_ns",
        }
        assert summary["count"] == 2
        assert summary["mean_ns"] == 550

    def test_render_shows_buckets_and_percentile_line(self):
        text = LatencyHistogram([100, 100, 1000]).render()
        assert "[" in text and "#" in text
        assert "n=3" in text and "p50=" in text and "max=" in text

    @given(st.lists(st.integers(0, 10**7), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentile_properties(self, samples):
        hist = LatencyHistogram(samples)
        assert hist.count == len(samples)
        assert hist.total_ns == sum(samples)
        # Nearest rank: every percentile is an actual sample, ordered.
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.percentile(fraction) in samples
        assert hist.p50 <= hist.p90 <= hist.p99 <= hist.max_ns
        assert hist.percentile(0.0) == min(samples)
        assert hist.percentile(1.0) == max(samples)
        # Buckets partition the samples.
        assert sum(count for _, _, count in hist.buckets()) == len(samples)

    @given(
        st.lists(st.integers(0, 10**6), max_size=50),
        st.lists(st.integers(0, 10**6), max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_union(self, left, right):
        merged = LatencyHistogram(left)
        merged.merge(LatencyHistogram(right))
        union = LatencyHistogram(left + right)
        assert merged.count == union.count
        assert merged.total_ns == union.total_ns
        for fraction in (0.5, 0.9, 0.99):
            assert merged.percentile(fraction) == union.percentile(fraction)


class TestHistogramSet:
    def test_record_and_get(self):
        hists = HistogramSet()
        hists.record("read", 1000)
        hists.record("read", 1050)
        hists.record("write", 1000)
        assert len(hists) == 2
        assert "read" in hists and "missing" not in hists
        assert hists.get("read").count == 2
        assert hists.get("missing").count == 0  # empty, never raises

    def test_labels_sorted(self):
        hists = HistogramSet()
        for label in ("b", "a", "c"):
            hists.record(label, 1)
        assert hists.labels() == ["a", "b", "c"]
        assert [label for label, _ in hists.items()] == ["a", "b", "c"]

    def test_merge(self):
        a, b = HistogramSet(), HistogramSet()
        a.record("read", 100)
        b.record("read", 1000)
        b.record("cas", 1000)
        a.merge(b)
        assert a.get("read").count == 2
        assert a.get("cas").count == 1

    def test_render_one_row_per_label(self):
        hists = HistogramSet()
        hists.record("read", 1000)
        hists.record("write", 2000)
        text = hists.render()
        assert "read" in text and "write" in text
        assert "p50 ns" in text and "p99 ns" in text
