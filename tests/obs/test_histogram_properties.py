"""Hypothesis property tests: histogram merge is a commutative monoid
(up to sample multiset), and windowed rings roll up losslessly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import HistogramRing, LatencyHistogram

samples = st.lists(
    st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
    max_size=64,
)


def _merged(*parts):
    out = LatencyHistogram()
    for part in parts:
        hist = LatencyHistogram(part)
        out.merge(hist)
    return out


@settings(max_examples=50)
@given(samples, samples)
def test_merge_is_commutative(a, b):
    ab, ba = _merged(a, b), _merged(b, a)
    assert ab.samples() == ba.samples()
    assert ab.count == ba.count
    for fraction in (0.5, 0.9, 0.99):
        assert ab.percentile(fraction) == ba.percentile(fraction)
    assert ab.buckets() == ba.buckets()


@settings(max_examples=50)
@given(samples, samples, samples)
def test_merge_is_associative(a, b, c):
    left = _merged(a, b)
    left.merge(LatencyHistogram(c))
    right = LatencyHistogram(a)
    right.merge(_merged(b, c))
    assert left.samples() == right.samples()
    assert left.buckets() == right.buckets()
    for fraction in (0.5, 0.9, 0.99):
        assert left.percentile(fraction) == right.percentile(fraction)


@settings(max_examples=50)
@given(samples)
def test_merge_with_empty_is_identity(a):
    hist = _merged(a)
    hist.merge(LatencyHistogram())
    assert hist.samples() == LatencyHistogram(a).samples()


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.floats(
                min_value=0, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        max_size=128,
    )
)
def test_ring_rollup_equals_unwindowed(timed_samples):
    """Scattering samples across windows then rolling the ring back up
    reproduces the histogram that never windowed at all."""
    ring = HistogramRing()
    flat = LatencyHistogram()
    for window, value in timed_samples:
        ring.record(window, value)
        flat.record(value)
    rollup = ring.rollup()
    assert rollup.samples() == flat.samples()
    assert rollup.count == flat.count == ring.total.count
    assert ring.total.samples() == flat.samples()
    if flat.count:
        for fraction in (0.5, 0.9, 0.99):
            assert rollup.percentile(fraction) == flat.percentile(fraction)
    # Partial rollups partition the whole: [min, k) + [k, max] == all.
    if timed_samples:
        windows = [w for w, _ in timed_samples]
        mid = (min(windows) + max(windows) + 1) // 2
        low = ring.rollup(stop=mid)
        high = ring.rollup(start=mid)
        assert low.count + high.count == flat.count
        assert ring.count_in(min(windows), max(windows) + 1) == flat.count


@settings(max_examples=50)
@given(
    samples,
    st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
)
def test_count_above_matches_naive(a, threshold):
    hist = LatencyHistogram(a)
    assert hist.count_above(threshold) == sum(1 for v in a if v > threshold)
