"""Observer-effect guarantees of the telemetry plane on the real A6/A8
benchmark scenarios: attaching the registry changes zero far-access
counts and zero simulated clock ticks."""

from __future__ import annotations

import os
import sys

# The bench modules live outside the package; make them importable and
# shrink their workloads before the module-level constants freeze.
os.environ.setdefault("FM_BENCH_SMOKE", "1")
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
)

import bench_a6_pipeline as a6  # noqa: E402
import bench_a8_migration as a8  # noqa: E402

from repro.fabric.client import Client  # noqa: E402


class TestA6PipelineScenario:
    def test_depth1_with_registry_equals_bare_sequential(self):
        """The instrumented depth-1 run (tracer + registry sink) lands on
        exactly the bare sequential path's far count and wall-clock."""
        Client.reset_ids()
        baseline = a6._sequential_baseline()
        Client.reset_ids()
        observed = a6._run_at_depth(1)
        assert observed["far_accesses"] == baseline["far_accesses"]
        assert observed["elapsed_ns"] == baseline["elapsed_ns"]


class TestA8MigrationScenario:
    def test_drain_is_bit_identical_with_telemetry(self):
        """The full drain-under-YCSB scenario: same copies charged, same
        ops applied, same clocks, with and without the registry."""
        Client.reset_ids()
        bare = a8._drain_under_ycsb(telemetry=False)
        Client.reset_ids()
        observed = a8._drain_under_ycsb(telemetry=True)
        for key in (
            "extents_moved",
            "charged_copy_accesses",
            "ycsb_ops_applied",
            "bytes_lost",
            "driver_clock_ns",
            "worker_clock_ns",
            "driver_far",
            "worker_far",
        ):
            assert bare[key] == observed[key], key
        # The bare run had nothing watching; the observed run converged
        # to the drained layout from events alone.
        assert bare["telemetry_converged"] is None
        assert observed["telemetry_converged"] is True
        assert observed["telemetry_drained"] is True
