"""SLO objectives and the burn-rate monitor: validation, burn math on
synthetic series, firing/dedup semantics, and alert trace events."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.fabric import FaultPlan, RetryPolicy
from repro.obs import (
    FLEET,
    SLOMonitor,
    SLObjective,
    TelemetryRegistry,
    Tracer,
    default_objectives,
)

NODE_SIZE = 8 << 20


class TestObjectiveValidation:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            SLObjective(name="both", budget=0.01, bad_metric="timeouts",
                        latency_metric="op_latency_ns")
        with pytest.raises(ValueError):
            SLObjective(name="neither", budget=0.01)

    def test_budget_range(self):
        with pytest.raises(ValueError):
            SLObjective(name="zero", budget=0.0, bad_metric="timeouts")
        with pytest.raises(ValueError):
            SLObjective(name="one", budget=1.0, bad_metric="timeouts")

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            SLObjective(
                name="bad-windows", budget=0.01, bad_metric="timeouts",
                short_windows=4, long_windows=2,
            )

    def test_duplicate_objective_names_rejected(self):
        registry = TelemetryRegistry()
        objective = SLObjective(name="dup", budget=0.01, bad_metric="timeouts")
        with pytest.raises(ValueError):
            SLOMonitor(registry, (objective, objective))

    def test_default_objectives_are_valid_and_unique(self):
        objectives = default_objectives()
        names = [o.name for o in objectives]
        assert len(set(names)) == len(names)
        assert "timeout-ratio" in names


def _seed_ratio_series(registry, *, bad_per_window, total_per_window, windows):
    """Fill fleet timeout/far-access counters for ``windows`` windows."""
    for w in range(windows):
        registry.counter(FLEET, "far_accesses").inc(w, total_per_window)
        if bad_per_window:
            registry.counter(FLEET, "timeouts").inc(w, bad_per_window)
    registry._current_window = windows  # all seeded windows are closed


class TestBurnRate:
    def test_ratio_burn_math(self):
        registry = TelemetryRegistry()
        # 5 bad out of 100+5 total per window against a 2% budget:
        # burn = (5/105)/0.02 ~= 2.38
        _seed_ratio_series(
            registry, bad_per_window=5, total_per_window=100, windows=4
        )
        objective = SLObjective(
            name="timeouts", budget=0.02, bad_metric="timeouts",
            total_metrics=("far_accesses", "timeouts"),
        )
        burn = objective.burn_rate(registry, 4)
        assert burn == pytest.approx((5 / 105) / 0.02)

    def test_no_traffic_means_no_burn(self):
        registry = TelemetryRegistry()
        objective = SLObjective(name="t", budget=0.01, bad_metric="timeouts")
        assert objective.burn_rate(registry, 8) == 0.0

    def test_latency_burn_counts_threshold_crossers(self):
        registry = TelemetryRegistry()
        ring = registry.histogram(FLEET, "op_latency_ns")
        for w in range(2):
            for value in (100, 200, 90_000, 80_000):
                ring.record(w, value)
        registry._current_window = 2
        objective = SLObjective(
            name="lat", budget=0.1, latency_metric="op_latency_ns",
            threshold_ns=50_000.0,
        )
        # Half the samples are over threshold against a 10% budget.
        assert objective.burn_rate(registry, 2) == pytest.approx(0.5 / 0.1)


class TestMonitorFiring:
    def _monitor(self, *, budget=0.02):
        registry = TelemetryRegistry()
        objective = SLObjective(
            name="timeouts", budget=budget, bad_metric="timeouts",
            total_metrics=("far_accesses", "timeouts"),
            short_windows=1, long_windows=4,
        )
        return registry, SLOMonitor(registry, (objective,))

    def test_fires_once_per_excursion(self):
        registry, monitor = self._monitor()
        _seed_ratio_series(
            registry, bad_per_window=10, total_per_window=100, windows=4
        )
        fired = monitor.evaluate()
        assert [a.objective for a in fired] == ["timeouts"]
        assert monitor.fired
        assert monitor.state("timeouts").firing
        # Still burning: no duplicate alert while the state stays firing.
        assert monitor.evaluate() == []
        assert len(monitor.alerts) == 1

    def test_refires_after_recovery(self):
        registry, monitor = self._monitor()
        _seed_ratio_series(
            registry, bad_per_window=10, total_per_window=100, windows=4
        )
        assert monitor.evaluate()
        # Clean windows: the short burn drops to zero and the state clears.
        for w in range(4, 8):
            registry.counter(FLEET, "far_accesses").inc(w, 100)
        registry._current_window = 8
        assert monitor.evaluate() == []
        assert not monitor.state("timeouts").firing
        # A second excursion fires a second alert.
        for w in range(8, 12):
            registry.counter(FLEET, "far_accesses").inc(w, 100)
            registry.counter(FLEET, "timeouts").inc(w, 10)
        registry._current_window = 12
        assert monitor.evaluate()
        assert monitor.state("timeouts").fired_count == 2

    def test_needs_both_windows(self):
        """One bad window inside a long clean history does not alert."""
        registry, monitor = self._monitor(budget=0.05)
        # 3 clean windows then one with a mild blip: short burn is high
        # but the long window dilutes it below threshold.
        for w in range(3):
            registry.counter(FLEET, "far_accesses").inc(w, 1_000)
        registry.counter(FLEET, "far_accesses").inc(3, 100)
        registry.counter(FLEET, "timeouts").inc(3, 12)
        registry._current_window = 4
        assert monitor.evaluate() == []
        state = monitor.state("timeouts")
        assert state.last_short >= 2.0
        assert state.last_long < 2.0

    def test_finish_evaluates_partial_window(self):
        registry, monitor = self._monitor()
        # All the damage is in the still-open window: plain evaluation
        # sees nothing, finish() includes it.
        registry.counter(FLEET, "far_accesses").inc(0, 100)
        registry.counter(FLEET, "timeouts").inc(0, 10)
        registry._current_window = 0
        assert monitor.evaluate() == []
        monitor.finish()
        assert monitor.fired


class TestEndToEnd:
    def test_alert_emitted_as_trace_event(self):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        cluster.inject_faults(seed=11, plan=FaultPlan().random_timeouts(0.25))
        client = cluster.client(
            "worker", retry_policy=RetryPolicy(max_attempts=6)
        )
        tracer = Tracer()
        tracer.attach(client)
        registry = TelemetryRegistry(window_ns=20_000).observe(tracer)
        monitor = SLOMonitor(registry)
        addr = cluster.allocator.alloc_words(1)
        for _ in range(200):
            client.read_u64(addr)
        monitor.finish(client)
        assert monitor.alerts_for("timeout-ratio")
        events = tracer.events_by_kind("slo_alert")
        assert len(events) == len(monitor.alerts)
        assert events[0].data["objective"] == monitor.alerts[0].objective
        # ...and the registry counted its own alert stream.
        assert registry.counter_total(FLEET, "slo_alerts") == len(events)

    def test_clean_run_never_fires(self):
        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        client = cluster.client("worker")
        tracer = Tracer()
        tracer.attach(client)
        registry = TelemetryRegistry(window_ns=20_000).observe(tracer)
        monitor = SLOMonitor(registry)
        tree = cluster.ht_tree(bucket_count=128)
        for key in range(64):
            tree.put(client, key, key)
        for key in range(64):
            assert tree.get(client, key) == key
        monitor.finish(client)
        assert monitor.alerts == []
