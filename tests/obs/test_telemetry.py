"""TelemetryRegistry: series primitives, scope accounting, zero observer
effect, window-advance listeners, and extent/node topology tracking."""

from __future__ import annotations

import pytest

from repro import Cluster
from repro.fabric.client import Client
from repro.obs import (
    CLIENT_COUNTER_FIELDS,
    FLEET,
    CounterSeries,
    GaugeSeries,
    HistogramRing,
    TelemetryRegistry,
    Tracer,
)

NODE_SIZE = 8 << 20


class TestCounterSeries:
    def test_total_and_windows(self):
        series = CounterSeries()
        series.inc(0)
        series.inc(0, 2)
        series.inc(3, 5)
        assert series.total == 8
        assert series.window_value(0) == 3
        assert series.window_value(1) == 0
        assert series.window_value(3) == 5
        assert series.sum_windows(0, 3) == 3
        assert series.sum_windows(0, 4) == 8
        assert series.windows() == [(0, 3), (3, 5)]

    def test_out_of_order_windows_accumulate(self):
        series = CounterSeries()
        series.inc(5)
        series.inc(2)
        series.inc(5)
        assert series.window_value(5) == 2
        assert series.window_value(2) == 1

    def test_ring_eviction_keeps_recent_and_total(self):
        series = CounterSeries(ring_windows=4)
        for w in range(100):
            series.inc(w)
        assert series.total == 100
        # The ring is bounded and always retains the last `cap` windows.
        assert len(series._windows) <= 8
        assert series.sum_windows(96, 100) == 4
        # Evicted windows read as zero, never as stale values.
        assert series.window_value(0) == 0


class TestGaugeSeries:
    def test_last_sample_wins_by_timestamp(self):
        gauge = GaugeSeries()
        gauge.set(0, 100.0, 7)
        gauge.set(1, 200.0, 9)
        assert gauge.value == 9
        # A late-arriving older sample never rolls the current value back.
        gauge.set(0, 50.0, 3)
        assert gauge.value == 9
        assert gauge.windows() == [(0, 3), (1, 9)]


class TestHistogramRing:
    def test_rollup_equals_total(self):
        ring = HistogramRing()
        for window, value in [(0, 100), (0, 200), (1, 400), (2, 800)]:
            ring.record(window, value)
        rollup = ring.rollup()
        assert rollup.count == ring.total.count == 4
        assert rollup.samples() == ring.total.samples()
        assert ring.rollup(1, 3).count == 2

    def test_count_over_and_in(self):
        ring = HistogramRing()
        for window, value in [(0, 100), (1, 5_000), (1, 100), (2, 9_000)]:
            ring.record(window, value)
        assert ring.count_in(0, 3) == 4
        assert ring.count_in(1, 2) == 2
        assert ring.count_over(0, 3, 1_000) == 2
        assert ring.count_over(1, 2, 1_000) == 1

    def test_window_hist_is_empty_for_unseen_window(self):
        ring = HistogramRing()
        assert ring.window_hist(42).count == 0


def _observed_cluster(**kwargs):
    cluster = Cluster(node_count=2, node_size=NODE_SIZE)
    client = cluster.client("worker", **kwargs)
    tracer = Tracer()
    tracer.attach(client)
    registry = TelemetryRegistry(window_ns=1_000).observe(tracer)
    return cluster, client, tracer, registry


class TestRegistryAccounting:
    def test_fleet_counters_equal_metrics_delta(self):
        cluster, client, tracer, registry = _observed_cluster()
        tree = cluster.ht_tree(bucket_count=64)
        for key in range(32):
            tree.put(client, key, key)
        for key in range(32):
            assert tree.get(client, key) == key
        assert (
            registry.counter_total(FLEET, "far_accesses")
            == client.metrics.far_accesses
        )
        assert (
            registry.counter_total(("client", "worker"), "far_accesses")
            == client.metrics.far_accesses
        )
        # Per-node scopes partition the fleet count exactly.
        node_total = sum(
            registry.counter_total(scope, "far_accesses")
            for scope in registry.scopes("node")
        )
        assert node_total == client.metrics.far_accesses
        # The latency ring saw one sample per access.
        hist = registry.histogram_total(FLEET, "far_latency_ns")
        assert hist.count == client.metrics.far_accesses

    def test_structure_scope_from_span_labels(self):
        cluster, client, tracer, registry = _observed_cluster()
        tree = cluster.ht_tree(bucket_count=64)
        tree.put(client, 1, 10)
        assert tree.get(client, 1) == 10
        assert "httree" in registry.structure_labels()
        assert registry.counter_total(("structure", "httree"), "far_accesses") > 0

    def test_extent_heat_and_node_attribution(self):
        cluster, client, tracer, registry = _observed_cluster()
        extent_size = cluster.fabric.extents.extent_size
        addr = cluster.allocator.alloc_words(4)
        extent = addr // extent_size
        for _ in range(5):
            client.write_u64(addr, 1)
        assert registry.extent_heat(extent) == 5
        assert extent in registry.heat_by_extent()
        table = cluster.fabric.extents
        assert registry.extent_node(extent) == table.node_of(
            table.extent_base(extent)
        )
        assert registry.extent_node(10**6) is None

    def test_timeouts_and_retries_counted(self):
        from repro.fabric import FaultPlan, RetryPolicy

        cluster = Cluster(node_count=2, node_size=NODE_SIZE)
        cluster.inject_faults(seed=7, plan=FaultPlan().random_timeouts(0.2))
        client = cluster.client(
            "flaky", retry_policy=RetryPolicy(max_attempts=6)
        )
        tracer = Tracer()
        tracer.attach(client)
        registry = TelemetryRegistry(window_ns=1_000).observe(tracer)
        addr = cluster.allocator.alloc_words(1)
        for _ in range(50):
            client.read_u64(addr)
        assert client.metrics.timeouts > 0
        assert (
            registry.counter_total(FLEET, "timeouts") == client.metrics.timeouts
        )
        assert (
            registry.counter_total(FLEET, "backoffs") == client.metrics.retries
        )

    def test_zero_observer_effect(self):
        """Attaching the registry changes no count and no clock tick."""

        def run(telemetry):
            Client.reset_ids()
            cluster = Cluster(node_count=2, node_size=NODE_SIZE)
            client = cluster.client("worker", qp_depth=8)
            if telemetry:
                tracer = Tracer()
                tracer.attach(client)
                TelemetryRegistry(window_ns=1_000).observe(tracer)
            tree = cluster.ht_tree(bucket_count=64)
            for key in range(48):
                tree.put(client, key, key * 2)
            assert tree.multiget(client, list(range(48))) == [
                key * 2 for key in range(48)
            ]
            return client.metrics.far_accesses, client.clock.now_ns

        assert run(telemetry=False) == run(telemetry=True)


class TestAttachment:
    def test_observe_is_idempotent(self):
        cluster, client, tracer, registry = _observed_cluster()
        registry.observe(tracer)  # second time is a no-op
        addr = cluster.allocator.alloc_words(1)
        client.write_u64(addr, 1)
        assert registry.counter_total(FLEET, "far_accesses") == 1

    def test_unobserve_stops_ingestion(self):
        cluster, client, tracer, registry = _observed_cluster()
        addr = cluster.allocator.alloc_words(1)
        client.write_u64(addr, 1)
        registry.unobserve(tracer)
        client.write_u64(addr, 2)
        assert registry.counter_total(FLEET, "far_accesses") == 1

    def test_watch_reuses_existing_tracer(self):
        cluster, client, tracer, registry = _observed_cluster()
        other = TelemetryRegistry(window_ns=1_000).watch(client)
        addr = cluster.allocator.alloc_words(1)
        client.write_u64(addr, 1)
        assert other.counter_total(FLEET, "far_accesses") == 1
        assert other._carrier is None  # rode the client's own tracer

    def test_watch_tracerless_client_attaches_carrier(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client("bare")
        registry = TelemetryRegistry(window_ns=1_000).watch(client)
        addr = cluster.allocator.alloc_words(1)
        client.write_u64(addr, 1)
        assert registry.counter_total(FLEET, "far_accesses") == 1
        # A second tracerless client shares the same carrier tracer.
        second = cluster.client("bare2")
        registry.watch(second)
        second.write_u64(addr, 2)
        assert (
            registry.counter_total(("client", "bare2"), "far_accesses") == 1
        )

    def test_window_ns_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryRegistry(window_ns=0)


class _Recorder:
    def __init__(self):
        self.advances = []

    def on_window_advance(self, registry, client, ts_ns):
        self.advances.append((registry.current_window, client.name))


class TestListeners:
    def test_window_advance_fires_on_boundary(self):
        cluster, client, tracer, registry = _observed_cluster()
        recorder = _Recorder()
        registry.add_listener(recorder)
        addr = cluster.allocator.alloc_words(1)
        # Each far access advances the simulated clock ~1 us; with 1 us
        # windows the listener must fire at least once.
        for _ in range(10):
            client.read_u64(addr)
        assert recorder.advances
        windows = [w for w, _name in recorder.advances]
        assert windows == sorted(windows)
        assert all(name == "worker" for _w, name in recorder.advances)

    def test_remove_listener(self):
        cluster, client, tracer, registry = _observed_cluster()
        recorder = _Recorder()
        registry.add_listener(recorder)
        registry.remove_listener(recorder)
        addr = cluster.allocator.alloc_words(1)
        for _ in range(10):
            client.read_u64(addr)
        assert recorder.advances == []


class TestSampling:
    def test_sample_client_mirrors_metrics(self):
        cluster, client, tracer, registry = _observed_cluster()
        addr = cluster.allocator.alloc_words(1)
        for _ in range(3):
            client.write_u64(addr, 9)
        registry.sample_client(client)
        scope = ("client", "worker")
        for name in CLIENT_COUNTER_FIELDS:
            assert registry.gauge_value(scope, f"metrics.{name}") == getattr(
                client.metrics, name
            )

    def test_sample_includes_custom_counters(self):
        cluster, client, tracer, registry = _observed_cluster()
        client.metrics.bump("fences", 4)
        registry.sample_client(client)
        assert (
            registry.gauge_value(("client", "worker"), "metrics.custom.fences")
            == 4
        )
