"""Tracer semantics: zero observer effect, exact attribution, causality.

The invariants under test are the ones DESIGN.md section 8 promises:

* tracing never changes behaviour — every metrics counter and every
  simulated timestamp is bit-identical with tracing on or off;
* every far access is attributed to exactly one span (the innermost open
  one, or the client's implicit root), so per-span attributions sum to
  the client's total;
* spans nest correctly across ``batch()`` scopes and unsignaled submits,
  and retry-ladder events attach to the faulted operation's span.
"""

import pytest

from repro import Cluster
from repro.fabric import FaultPlan, Profiler, RetryPolicy
from repro.fabric.errors import FabricError
from repro.notify.delivery import DeliveryEngine, DeliveryPolicy
from repro.notify.subscription import Notification, NotifyKind, Subscription
from repro.obs import Tracer


def _workload(traced):
    """One deterministic mixed workload; returns (metrics, clock, tracer)."""
    cluster = Cluster(node_count=2, node_size=8 << 20)
    client = cluster.client("worker", qp_depth=8)
    tracer = None
    if traced:
        tracer = Tracer()
        tracer.attach(client)
    tree = cluster.ht_tree(bucket_count=256, max_chain=4)
    for key in range(40):
        tree.put(client, key, key * key)
    values = tree.multiget(client, list(range(40)))
    assert values == [key * key for key in range(40)]
    queue = cluster.far_queue(capacity=32, max_clients=2)
    for i in range(20):
        queue.enqueue(client, i + 1)
        assert queue.dequeue(client) == i + 1
    block = cluster.allocator.alloc(128)
    with client.batch():
        for i in range(8):
            client.submit("write_u64", block + 8 * i, i)
    client.fence()
    return client.metrics, client.clock, tracer


class TestZeroObserverEffect:
    def test_tracing_is_bit_identical(self):
        base_metrics, base_clock, _ = _workload(traced=False)
        traced_metrics, traced_clock, tracer = _workload(traced=True)
        # Every counter — far accesses, round trips, traversals, pipeline
        # nanoseconds — and the clock itself, exactly.
        assert traced_metrics.as_dict() == base_metrics.as_dict()
        assert traced_clock.now_ns == base_clock.now_ns
        # And the tracer actually observed the run.
        assert tracer.events_by_kind("far_access")

    def test_attribution_sums_to_client_total(self):
        metrics, _, tracer = _workload(traced=True)
        tracer.finish()
        assert tracer.attributed_far_accesses() == metrics.far_accesses
        assert len(tracer.events_by_kind("far_access")) == metrics.far_accesses


class TestSpanNesting:
    def test_nesting_across_batch(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("worker", qp_depth=16)
        block = cluster.allocator.alloc(128)
        tracer = Tracer()
        with tracer.span(client, "outer") as outer:
            with client.batch():
                with client.trace("inner", step=1) as inner:
                    for i in range(4):
                        client.submit("write_u64", block + 8 * i, i)
                for i in range(4, 6):
                    client.submit("write_u64", block + 8 * i, i)
        tracer.finish()

        root = tracer.spans_by_label("client:worker")[0]
        assert outer.parent_id == root.span_id
        assert inner.parent_id == outer.span_id
        assert inner.tags == {"step": 1}
        assert outer.child_count == 1

        # Far accesses attribute to the innermost span open at issue
        # time, even though the batch window flushes after `inner` ends.
        accesses = tracer.events_by_kind("far_access")
        assert [e.span_id for e in accesses] == [inner.span_id] * 4 + [
            outer.span_id
        ] * 2
        assert inner.far_accesses == 4
        assert outer.far_accesses == 2

        # The batch-exit flush is one window event holding all six ops,
        # attributed to the span open at flush time (outer), with each
        # member op still pointing back at its own span.
        windows = tracer.events_by_kind("window")
        assert len(windows) == 1
        window = windows[0]
        assert window.data["reason"] == "batch"
        assert window.data["n"] == 6
        assert window.span_id == outer.span_id
        member_spans = [op["span_id"] for op in window.data["ops"]]
        assert member_spans == [inner.span_id] * 4 + [outer.span_id] * 2
        # Overlap actually hid latency in this window.
        assert window.data["saved_ns"] > 0
        assert window.data["charged_ns"] < window.data["serial_ns"]

        # Spans nest, so the inclusive deltas do too.
        assert outer.delta.far_accesses == 6
        assert inner.delta.far_accesses == 4
        assert tracer.attributed_far_accesses() == client.metrics.far_accesses

    def test_unsignaled_submit_attributes_to_enclosing_span(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("poller", qp_depth=8)
        block = cluster.allocator.alloc(64)
        client.write_u64(block, 7)
        tracer = Tracer()
        with tracer.span(client, "poll") as span:
            future = client.submit("read_u64", block, signaled=False)
        client.fence()
        tracer.finish()

        # The unsignaled future never lands in the CQ, but its far access
        # is still attributed to the span open at submit time.
        assert future.result() == 7
        assert future.span_id == span.span_id
        assert span.far_accesses == 1
        access = tracer.span_events(span)[0]
        assert access.kind == "far_access"
        assert access.data["op"] == "read_u64"

        # The post-span fence flush belongs to the root span instead.
        root = tracer.spans_by_label("client:poller")[0]
        fence_windows = [
            e
            for e in tracer.events_by_kind("window")
            if e.data["reason"] == "fence"
        ]
        assert len(fence_windows) == 1
        assert fence_windows[0].span_id == root.span_id

    def test_root_span_catches_unscoped_work(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("loose")
        tracer = Tracer()
        tracer.attach(client)
        counter = cluster.far_counter()
        counter.add(client, 41)
        counter.increment(client)
        assert counter.read(client) == 42
        tracer.finish()

        root = tracer.spans_by_label("client:loose")[0]
        assert root.is_root
        assert root.parent_id is None
        assert root.far_accesses == client.metrics.far_accesses == 3
        # Root spans are accounting scaffolding, not measured labels.
        assert "client:loose" not in tracer.span_hist

    def test_stall_flushes_at_qp_bound(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("deep", qp_depth=2)
        block = cluster.allocator.alloc(64)
        tracer = Tracer()
        snapshot = client.metrics.snapshot()
        with tracer.span(client, "burst"):
            for i in range(6):
                client.submit("write_u64", block + 8 * i, i)
        tracer.finish()
        delta = client.metrics.delta(snapshot)

        stalls = tracer.events_by_kind("stall")
        assert len(stalls) == delta.pipeline_stalls == 3
        assert all(e.data["qp_depth"] == 2 for e in stalls)
        windows = tracer.events_by_kind("window")
        assert [w.data["reason"] for w in windows] == ["stall"] * 3
        assert all(w.data["n"] == 2 for w in windows)
        assert tracer.window_hist.count == 3


class TestFaultEvents:
    def test_retry_ladder_attaches_to_op_spans(self):
        cluster = Cluster(node_count=2, node_size=8 << 20)
        tree = cluster.ht_tree(bucket_count=128, max_chain=4)
        loader = cluster.client("loader")
        for key in range(100):
            tree.put(loader, key, key)

        cluster.inject_faults(
            seed=7, plan=FaultPlan().random_timeouts(0.2)
        )
        client = cluster.client(
            "worker", retry_policy=RetryPolicy(max_attempts=6)
        )
        tracer = Tracer()
        tracer.attach(client)
        snapshot = client.metrics.snapshot()
        for key in range(100):
            try:
                tree.get(client, key)
            except FabricError:
                pass
        delta = client.metrics.delta(snapshot)
        tracer.finish()

        assert delta.retries > 0 and delta.timeouts > 0
        # One backoff event per re-attempt, one timeout event per
        # timed-out attempt — nothing lost, nothing invented.
        backoffs = tracer.events_by_kind("backoff")
        timeouts = tracer.events_by_kind("timeout")
        assert len(backoffs) == delta.retries
        assert len(timeouts) == delta.timeouts
        # Every retry-ladder event attaches to the faulted lookup's span,
        # not to the root or a neighbouring op.
        get_ids = {s.span_id for s in tracer.spans_by_label("httree.get")}
        assert all(e.span_id in get_ids for e in backoffs)
        assert all(e.span_id in get_ids for e in timeouts)
        for event in backoffs:
            assert event.data["attempt"] >= 1
            assert event.data["backoff_ns"] > 0
            assert event.data["op"]


class TestAttachment:
    def test_client_feeds_at_most_one_tracer(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("solo")
        first, second = Tracer(), Tracer()
        first.attach(client)
        assert first.attach(client) is first  # idempotent
        with pytest.raises(RuntimeError):
            second.attach(client)
        with pytest.raises(RuntimeError):
            with second.span(client, "nope"):
                pass
        # Detach closes the root span and frees the client for reattach.
        first.detach(client)
        assert client.tracer is None
        assert first.spans_by_label("client:solo")[0].open is False
        second.attach(client)
        assert client.tracer is second

    def test_span_auto_attaches(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("auto")
        tracer = Tracer()
        counter = cluster.far_counter()
        with tracer.span(client, "bump"):
            counter.increment(client)
        assert tracer.attached(client)
        assert tracer.spans_by_label("bump")[0].far_accesses > 0

    def test_histogram_families(self):
        cluster = Cluster(node_count=2, node_size=8 << 20)
        client = cluster.client("worker")
        tracer = Tracer()
        tree = cluster.ht_tree(bucket_count=64)
        with tracer.span(client, "put-phase"):
            for key in range(16):
                tree.put(client, key, key)
        tracer.finish()
        assert "put-phase" in tracer.span_hist
        assert tracer.span_hist.get("put-phase").count == 1
        # Per-op and per-node charge histograms cover every far access.
        total = client.metrics.far_accesses
        assert (
            sum(h.count for _, h in tracer.op_hist.items()) == total
        )
        node_labels = tracer.node_hist.labels()
        assert node_labels and all(
            label.startswith("node") for label in node_labels
        )
        assert sum(h.count for _, h in tracer.node_hist.items()) == total


class TestNotifyAndProfiler:
    def test_notification_outcomes_become_events(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("subscriber")
        tracer = Tracer()
        tracer.attach(client)
        engine = DeliveryEngine(DeliveryPolicy(coalesce_every=2))
        sub = Subscription(1, client, NotifyKind.NOTIFY0, 0, 8)
        for seq in range(4):
            engine.offer(sub, Notification(1, NotifyKind.NOTIFY0, 0, 8, seq=seq))
        tracer.finish()

        notes = tracer.events_by_kind("notify")
        assert [e.data["outcome"] for e in notes] == [
            "coalesced",
            "delivered",
            "coalesced",
            "delivered",
        ]
        assert all(e.data["sub_id"] == 1 for e in notes)
        # Delivered events carry the coalesced-count the paper's NOTIFY
        # semantics argue about.
        assert [e.data.get("coalesced") for e in notes] == [None, 2, None, 2]

    def test_profiler_composes_with_attached_tracer(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        client = cluster.client("worker")
        tracer = Tracer()
        tracer.attach(client)
        profiler = Profiler()
        tree = cluster.ht_tree(bucket_count=64)
        with profiler.measure(client, "load"):
            for key in range(8):
                tree.put(client, key, key)
        tracer.finish()

        # One span mechanism, two views: the profiler's ledger and the
        # tracer's span tree see the same measured block.
        row = profiler.row("load")
        span = tracer.spans_by_label("load")[0]
        assert row.count == 1
        assert row.far_accesses == span.delta.far_accesses > 0
        assert row.time_ns == span.duration_ns
        # The structure's own spans nest inside the profiled label.
        puts = tracer.spans_by_label("httree.put")
        assert len(puts) == 8
        assert all(p.parent_id == span.span_id for p in puts)


class TestIntegrityAndRepairEvents:
    def _integrity_workload(self, traced):
        from repro.fabric.replication import ReplicatedRegion
        from repro.recovery import RepairCoordinator

        cluster = Cluster(node_count=4, node_size=8 << 20)
        client = cluster.client("app")
        tracer = None
        if traced:
            tracer = Tracer()
            tracer.attach(client)
        region = ReplicatedRegion.create_framed(
            cluster.allocator, block_payload=32, block_count=6, copies=2
        )
        coordinator = RepairCoordinator(
            cluster.allocator, home_node=3, chunk_blocks=4
        )
        coordinator.register(client, region)
        for index in range(6):
            region.write_block(client, index, bytes([index]) * 32)
        # Rot block 0 on the primary: the read detects and heals.
        location = cluster.fabric.locate(region.replicas[0])
        cluster.fabric.nodes[location.node].corrupt_bit(location.offset + 9, 4)
        stale = region.clone_view()
        assert region.read_block(client, 0) == b"\x00" * 32
        dead = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(dead)
        coordinator.run(client, dead)
        try:
            stale.write_block(client, 1, b"s" * 32)
        except FabricError:
            pass
        return client.metrics, client.clock, tracer

    def test_zero_observer_effect_on_integrity_paths(self):
        bare_metrics, bare_clock, _ = self._integrity_workload(traced=False)
        traced_metrics, traced_clock, _ = self._integrity_workload(traced=True)
        assert traced_metrics.as_dict() == bare_metrics.as_dict()
        assert traced_clock.now_ns == bare_clock.now_ns

    def test_events_and_summary_lines(self):
        _, _, tracer = self._integrity_workload(traced=True)
        tracer.finish()

        rot = tracer.events_by_kind("corruption_detected")
        assert len(rot) == 1
        assert rot[0].data["payload_len"] == 32

        copies = tracer.events_by_kind("repair_copy")
        assert copies  # chunked: 6 blocks in chunks of 4 -> 2 events
        assert copies[-1].data["done"] == copies[-1].data["total"] == 6
        assert sum(e.data["blocks"] for e in copies) == 6

        fences = tracer.events_by_kind("fence_reject")
        assert len(fences) == 1
        assert fences[0].data["held"] == 1
        assert fences[0].data["current"] == 2

        summary = tracer.summary()
        assert "integrity: corruption_detected=1" in summary
        assert "fence_rejects=1" in summary
        assert "repair: region 0" in summary
        assert "6/6 blocks" in summary

    def test_torn_write_event_carries_attempts(self):
        cluster = Cluster(node_count=1, node_size=8 << 20)
        cluster.inject_faults(seed=2, plan=FaultPlan().torn_at(0))
        client = cluster.client("w", breaker_policy=None)  # retries on
        tracer = Tracer()
        tracer.attach(client)
        addr = cluster.allocator.alloc(64)
        client.write(addr, b"\x55" * 64)  # torn once, healed by retry
        tracer.finish()
        torn = tracer.events_by_kind("torn_write")
        assert len(torn) == 1
        assert torn[0].data["op"] == "write"
        assert torn[0].data["attempt"] == 1
        assert "torn_writes=1" in tracer.summary()

    def test_breaker_state_line(self):
        from repro.fabric import BreakerPolicy

        cluster = Cluster(node_count=2, node_size=8 << 20)
        cluster.inject_faults(
            seed=3, plan=FaultPlan().random_timeouts(1.0, node=0)
        )
        client = cluster.client(
            "b",
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_ns=1e12),
        )
        tracer = Tracer()
        tracer.attach(client)
        addr = cluster.allocator.alloc(64)
        for _ in range(3):
            try:
                client.read_u64(addr)
            except FabricError:
                pass
        tracer.finish()
        summary = tracer.summary()
        assert "breaker: b node0 state=open" in summary
        assert "trips=1" in summary


class TestNodeSummaryLines:
    def test_per_node_breakdown_in_summary(self):
        """`repro trace` summaries carry a per-node line: traffic share,
        tail charge, and fault counts, keyed by memory node."""
        cluster = Cluster(node_count=2, node_size=8 << 20)
        cluster.inject_faults(
            seed=5, plan=FaultPlan().random_timeouts(0.3, node=1)
        )
        client = cluster.client(
            "worker", retry_policy=RetryPolicy(max_attempts=6)
        )
        tracer = Tracer()
        tracer.attach(client)
        # Spread traffic over both nodes so both rows materialize.
        near = cluster.allocator.alloc_words(1)
        from repro.alloc import on_node

        far = cluster.allocator.alloc_words(1, on_node(1))
        for _ in range(20):
            client.read_u64(near)
            client.read_u64(far)
        tracer.finish()
        summary = tracer.summary()
        assert "node0: far=" in summary
        assert "node1: far=" in summary
        node1 = next(
            line for line in summary.splitlines()
            if line.startswith("node1:")
        )
        # The faulted node's row owns the timeouts; the clean one has none.
        assert f"timeouts={client.metrics.timeouts}" in node1
        node0 = next(
            line for line in summary.splitlines()
            if line.startswith("node0:")
        )
        assert "timeouts=0" in node0
        assert "p99=" in node0
        # Traffic shares are percentages that cover all far accesses.
        assert "(" in node0 and "%)" in node0

    def test_drained_and_dead_markers(self):
        cluster = Cluster(node_count=2, node_size=1 << 20)
        cluster.add_node()  # empty headroom for the drain
        client = cluster.client("driver")
        tracer = Tracer()
        tracer.attach(client)
        base = cluster.allocator.alloc(4096)
        client.write_u64(base, 7)
        cluster.drain_node(0, client)
        tracer.finish()
        summary = tracer.summary()
        node0 = next(
            line for line in summary.splitlines()
            if line.startswith("node0:")
        )
        assert "drained" in node0
