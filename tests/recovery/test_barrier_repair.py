"""Tests for barrier repair after participant crashes."""

import pytest

from repro import Cluster
from repro.core.barrier import BarrierError
from repro.recovery import arrive_for_dead

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestBarrierRepair:
    def test_repair_unblocks_survivors(self, cluster):
        barrier = cluster.far_barrier(3)
        survivor = cluster.client()
        victim = cluster.client()
        supervisor = cluster.client()
        ticket = barrier.arrive(survivor)
        victim.crash()  # never arrives
        report = arrive_for_dead(barrier, supervisor, dead_count=2)
        assert report.completed
        assert barrier.wait_done(survivor, ticket)

    def test_repair_without_completion(self, cluster):
        barrier = cluster.far_barrier(4)
        supervisor = cluster.client()
        report = arrive_for_dead(barrier, supervisor, dead_count=2)
        assert not report.completed
        assert report.decremented == 2
        # The remaining two arrivals still work normally.
        c1, c2 = cluster.client(), cluster.client()
        barrier.arrive(c1)
        ticket = barrier.arrive(c2)
        assert ticket.is_last

    def test_overshoot_rejected(self, cluster):
        barrier = cluster.far_barrier(2)
        supervisor = cluster.client()
        barrier.arrive(cluster.client())
        with pytest.raises(BarrierError):
            arrive_for_dead(barrier, supervisor, dead_count=2)

    def test_dead_count_validated(self, cluster):
        barrier = cluster.far_barrier(2)
        with pytest.raises(ValueError):
            arrive_for_dead(barrier, cluster.client(), dead_count=0)
