"""Tests for crash simulation: separate fault domains (section 2)."""

import pytest

from repro import Cluster
from repro.alloc import on_node
from repro.fabric.errors import ClientDeadError, NodeUnavailableError

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=2, node_size=NODE_SIZE)


class TestClientCrash:
    def test_far_memory_survives_client_crash(self, cluster):
        # The section 2 availability claim, verbatim.
        writer = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        writer.write_u64(addr, 12345)
        writer.crash()
        survivor = cluster.client()
        assert survivor.read_u64(addr) == 12345

    def test_dead_client_cannot_operate(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        client.crash()
        with pytest.raises(ClientDeadError):
            client.read_u64(addr)
        with pytest.raises(ClientDeadError):
            client.write_u64(addr, 1)
        with pytest.raises(ClientDeadError):
            client.faa(addr, 1)
        with pytest.raises(ClientDeadError):
            client.load0(addr, 8)
        with pytest.raises(ClientDeadError):
            client.rgather([(addr, 8)])

    def test_crash_loses_volatile_state(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(client, addr, 8)
        cluster.client().write_u64(addr, 1)
        assert client.pending_notifications() == 1
        client.crash()
        assert client.pending_notifications() == 0

    def test_notifications_to_dead_client_vanish(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1)
        cluster.notifications.notify0(client, addr, 8)
        client.crash()
        cluster.client().write_u64(addr, 1)  # matcher still fires
        assert client.pending_notifications() == 0

    def test_ht_tree_data_survives_writer_crash(self, cluster):
        tree = cluster.ht_tree(bucket_count=64, max_chain=4)
        writer = cluster.client()
        for k in range(200):
            tree.put(writer, k, k * 2)
        writer.crash()
        reader = cluster.client()
        for k in range(200):
            assert tree.get(reader, k) == k * 2


class TestNodeFailure:
    def test_failed_node_raises(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(addr, 5)
        cluster.fabric.fail_node(1)
        with pytest.raises(NodeUnavailableError) as excinfo:
            client.read_u64(addr)
        assert excinfo.value.node == 1

    def test_other_nodes_stay_available(self, cluster):
        # Partial disaggregation: fault domains are per memory node.
        client = cluster.client()
        safe = cluster.allocator.alloc_words(1, on_node(0))
        client.write_u64(safe, 9)
        cluster.fabric.fail_node(1)
        assert client.read_u64(safe) == 9

    def test_repair_restores_contents(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1, on_node(1))
        client.write_u64(addr, 77)
        cluster.fabric.fail_node(1)
        cluster.fabric.repair_node(1)
        assert client.read_u64(addr) == 77

    def test_striped_read_fails_if_any_node_down(self):
        striped = Cluster(node_count=4, node_size=NODE_SIZE, interleaved=True)
        client = striped.client()
        base = striped.allocator.alloc(3 * 4096)
        client.write(base, b"x" * (3 * 4096))
        striped.fabric.fail_node(2)
        with pytest.raises(NodeUnavailableError):
            client.read(base, 3 * 4096)

    def test_atomics_respect_failure(self, cluster):
        client = cluster.client()
        addr = cluster.allocator.alloc_words(1, on_node(1))
        cluster.fabric.fail_node(1)
        with pytest.raises(NodeUnavailableError):
            client.faa(addr, 1)
        with pytest.raises(NodeUnavailableError):
            client.cas(addr, 0, 1)

    def test_node_available(self, cluster):
        assert cluster.fabric.node_available(0)
        cluster.fabric.fail_node(0)
        assert not cluster.fabric.node_available(0)

    def test_fail_unknown_node_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.fabric.fail_node(9)
