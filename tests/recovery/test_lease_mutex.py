"""Tests for lease-based crash-recoverable mutexes."""

import pytest

from repro import Cluster
from repro.core.mutex import MutexError
from repro.recovery import LeasedFarMutex

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def mutex(cluster):
    return LeasedFarMutex.create(cluster.allocator, ttl_epochs=2)


class TestHealthyPath:
    def test_acquire_release(self, cluster, mutex):
        c = cluster.client()
        assert mutex.try_acquire(c)
        assert mutex.holder(c) == c.client_id
        mutex.release(c)
        assert mutex.holder(c) is None

    def test_contention(self, cluster, mutex):
        c1, c2 = cluster.client(), cluster.client()
        assert mutex.try_acquire(c1)
        assert not mutex.try_acquire(c2)
        assert mutex.stats.contended == 1

    def test_renewal_extends_lease(self, cluster, mutex):
        holder, other = cluster.client(), cluster.client()
        assert mutex.try_acquire(holder)
        for _ in range(5):  # epochs pass, but the holder heartbeats
            mutex.tick(other)
            mutex.renew(holder)
            assert not mutex.try_acquire(other)

    def test_renew_requires_ownership(self, cluster, mutex):
        c1, c2 = cluster.client(), cluster.client()
        mutex.try_acquire(c1)
        with pytest.raises(MutexError):
            mutex.renew(c2)

    def test_acquire_cost(self, cluster, mutex):
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        mutex.try_acquire(c)
        # Gather + CAS + lease write.
        assert c.metrics.delta(snapshot).far_accesses == 3


class TestCrashTakeover:
    def test_expired_lease_taken_over(self, cluster, mutex):
        holder, survivor = cluster.client(), cluster.client()
        assert mutex.try_acquire(holder)
        holder.crash()
        # Lease still valid: takeover refused.
        assert not mutex.try_acquire(survivor)
        # Epochs pass without renewal; the lease expires.
        mutex.tick(survivor)
        mutex.tick(survivor)
        mutex.tick(survivor)
        assert mutex.try_acquire(survivor)
        assert mutex.stats.takeovers == 1
        assert mutex.holder(survivor) == survivor.client_id

    def test_zombie_release_is_fenced(self, cluster, mutex):
        # A stalled (not crashed) holder whose lease expired must not be
        # able to release the lock out from under the new owner.
        slow, fast = cluster.client(), cluster.client()
        assert mutex.try_acquire(slow)
        for _ in range(3):
            mutex.tick(fast)
        assert mutex.try_acquire(fast)  # takeover
        with pytest.raises(MutexError):
            mutex.release(slow)  # zombie fenced by the CAS
        mutex.release(fast)

    def test_takeover_race_one_winner(self, cluster, mutex):
        holder, a, b = cluster.client(), cluster.client(), cluster.client()
        mutex.try_acquire(holder)
        holder.crash()
        for _ in range(3):
            mutex.tick(a)
        won_a = mutex.try_acquire(a)
        won_b = mutex.try_acquire(b)
        assert won_a and not won_b


class TestSharedEpoch:
    def test_many_locks_one_epoch(self, cluster):
        epoch = cluster.allocator.alloc_words(1)
        cluster.fabric.write_word(epoch, 0)
        locks = [
            LeasedFarMutex.create(cluster.allocator, ttl_epochs=1, epoch_addr=epoch)
            for _ in range(3)
        ]
        holder, survivor = cluster.client(), cluster.client()
        for lock in locks:
            assert lock.try_acquire(holder)
        holder.crash()
        LeasedFarMutex.advance_epoch(survivor, epoch)
        LeasedFarMutex.advance_epoch(survivor, epoch)
        for lock in locks:
            assert lock.try_acquire(survivor)  # all expired together

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            LeasedFarMutex.create(cluster.allocator, ttl_epochs=0)
