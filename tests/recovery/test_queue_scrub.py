"""Tests for queue scrubbing after client crashes."""

import pytest

from repro import Cluster
from repro.fabric.errors import QueueEmpty
from repro.fabric.wire import WORD, encode_u64
from repro.recovery import QueueScrubber

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


def drain_all(queue, client):
    out = []
    while True:
        got = queue.try_dequeue(client)
        if got is None:
            got = queue.try_dequeue(client)  # claims need one retry
            if got is None:
                break
        out.append(got)
    return out


class TestCleanQueue:
    def test_scrub_of_healthy_queue_is_noop(self, cluster):
        queue = cluster.far_queue(capacity=32, max_clients=3)
        c = cluster.client()
        for i in range(5):
            queue.enqueue(c, i + 1)
        report = QueueScrubber(queue).scrub(cluster.client())
        assert report.clean
        assert drain_all(queue, c) == [1, 2, 3, 4, 5]

    def test_scrub_preserves_live_window_across_wrap(self, cluster):
        queue = cluster.far_queue(capacity=16, max_clients=2)
        producer, consumer = cluster.client(), cluster.client()
        # Advance around the ring so the window wraps, then leave items in.
        for i in range(30):
            queue.enqueue(producer, i + 1)
            queue.dequeue(consumer)
        for i in range(6):
            queue.enqueue(producer, 100 + i)
        queue.flush_clears(consumer)
        report = QueueScrubber(queue).scrub(cluster.client())
        assert report.orphans_reenqueued == 0
        assert drain_all(queue, consumer) == [100 + i for i in range(6)]


class TestCrashRepairs:
    def test_stranded_slack_pointer_repaired(self, cluster):
        queue = cluster.far_queue(capacity=16, max_clients=3)
        # Hand-craft the crash state a producer leaves when it dies right
        # after its slack-landing saai: tail stranded past the array, item
        # sitting in the slack slot, head already at the wrap point.
        cluster.fabric.write_word(queue.head_addr, queue.array_base)
        cluster.fabric.write_word(queue.tail_addr, queue.slack_base + WORD)
        cluster.fabric.write(queue.slack_base, encode_u64(999))
        report = QueueScrubber(queue).scrub(cluster.client())
        assert report.pointers_repaired == 1
        assert report.migrations_completed == 1
        # The migrated item is inside the repaired window and dequeues.
        assert drain_all(queue, cluster.client()) == [999]

    def test_abandoned_migration_completed(self, cluster):
        queue = cluster.far_queue(capacity=16, max_clients=3)
        producer, consumer = cluster.client(), cluster.client()
        # Lap the ring so wrapped slots are clear, then hand-craft the
        # crash state: item in slack slot 0, pointers already repaired
        # (the dying producer got as far as the pointer CAS).
        for i in range(16):
            queue.enqueue(producer, i + 1)
            queue.dequeue(consumer)
        queue.flush_clears(consumer)
        cluster.fabric.write(queue.slack_base, encode_u64(555))
        report = QueueScrubber(queue).scrub(cluster.client())
        assert report.migrations_completed == 1
        # The migrated item sits outside the live window, so the scrubber
        # also re-enqueued it.
        got = drain_all(queue, consumer)
        assert 555 in got

    def test_orphaned_claim_item_redelivered(self, cluster):
        # Reach a genuine claim through the public API: an empty dequeue
        # whose head lands in the slack region skips the undo and arms a
        # claim on the wrapped slot.
        queue = cluster.far_queue(capacity=12, max_clients=3)
        producer = cluster.client()
        victim = cluster.client()
        other = cluster.client()
        for i in range(queue.capacity):  # advance both pointers to slack
            queue.enqueue(producer, i + 1)
            assert queue.dequeue(victim) == i + 1
        queue.flush_clears(victim)  # isolate the claim from stale clears
        with pytest.raises(QueueEmpty):
            queue.dequeue(victim)  # wrap + empty: claim armed
        assert queue.stats.claims_registered == 1
        queue.enqueue(producer, 42)  # migrates into the claimed slot
        # The head has already wrapped past the slot: 42 is stranded.
        victim.crash()
        report = QueueScrubber(queue).recover_crashed_client(
            victim.client_id, other
        )
        assert report.orphans_reenqueued == 1
        assert report.redelivery_possible
        assert drain_all(queue, other) == [42]

    def test_detach_frees_client_slot(self, cluster):
        queue = cluster.far_queue(capacity=32, max_clients=2)
        a, b = cluster.client(), cluster.client()
        queue.enqueue(a, 1)
        queue.enqueue(b, 2)
        a.crash()
        queue.detach_client(a.client_id)
        replacement = cluster.client()
        queue.enqueue(replacement, 3)  # would raise without the detach

    def test_uncleared_consumed_slots_cause_redelivery(self, cluster):
        # The documented at-least-once trade-off of the Fig.1-only mode: a
        # consumer that crashed before flushing its deferred clears gets
        # its items re-delivered.
        queue = cluster.far_queue(
            capacity=32, max_clients=3, clear_batch=100, use_fsaai=False
        )
        producer, victim, other = (
            cluster.client(),
            cluster.client(),
            cluster.client(),
        )
        for i in range(4):
            queue.enqueue(producer, i + 1)
        consumed = [queue.dequeue(victim) for _ in range(4)]
        victim.crash()  # deferred clears never flushed
        report = QueueScrubber(queue).recover_crashed_client(
            victim.client_id, other
        )
        assert report.orphans_reenqueued == 4
        assert sorted(drain_all(queue, other)) == sorted(consumed)
