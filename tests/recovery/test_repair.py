"""Tests for the re-replication coordinator and its epoch-fencing protocol."""

import pytest

from repro import Cluster
from repro.fabric import frame_size
from repro.fabric.errors import (
    AllocationError,
    NodeUnavailableError,
    StaleEpochError,
)
from repro.fabric.replication import ReplicatedRegion
from repro.recovery import RepairCoordinator

NODE_SIZE = 8 << 20
PAYLOAD = 64
BLOCKS = 12


@pytest.fixture
def cluster():
    return Cluster(node_count=4, node_size=NODE_SIZE)


@pytest.fixture
def coordinator(cluster):
    # Epoch words on the last node, which these tests never kill.
    return RepairCoordinator(cluster.allocator, home_node=3, chunk_blocks=4)


@pytest.fixture
def framed(cluster):
    return ReplicatedRegion.create_framed(
        cluster.allocator, block_payload=PAYLOAD, block_count=BLOCKS, copies=2
    )


def fill(region, client):
    oracle = {}
    for index in range(region.block_count):
        oracle[index] = bytes([index + 1]) * PAYLOAD
        region.write_block(client, index, oracle[index])
    return oracle


class TestRegistration:
    def test_register_sets_up_the_fence(self, cluster, coordinator, framed):
        c = cluster.client()
        region_id = coordinator.register(c, framed)
        assert framed.region_id == region_id
        assert framed.epoch == 1
        assert c.read_u64(framed.epoch_addr) == 1
        assert cluster.fabric.node_of(framed.epoch_addr) == 3
        assert coordinator.current_replicas(region_id) == tuple(framed.replicas)

    def test_double_register_rejected(self, cluster, coordinator, framed):
        c = cluster.client()
        coordinator.register(c, framed)
        with pytest.raises(ValueError):
            coordinator.register(c, framed)

    def test_config_validation(self, cluster):
        with pytest.raises(ValueError):
            RepairCoordinator(cluster.allocator, chunk_blocks=0)
        with pytest.raises(ValueError):
            RepairCoordinator(cluster.allocator, chunk_bytes=4)


class TestRepair:
    def test_rebuild_restores_full_replication(self, cluster, coordinator, framed):
        c = cluster.client()
        coordinator.register(c, framed)
        oracle = fill(framed, c)
        dead = cluster.fabric.node_of(framed.replicas[0])
        cluster.fabric.fail_node(dead)
        assert framed.live_replicas() == 1

        report = coordinator.run(c, dead)
        assert report.replicas_rebuilt == 1
        assert report.blocks_copied == BLOCKS
        assert framed.live_replicas() == 2
        assert dead not in {
            cluster.fabric.node_of(base) for base in framed.replicas
        }
        for index, expected in oracle.items():
            assert framed.read_block(c, index) == expected

    def test_repair_cost_is_linear_in_blocks(self, cluster, coordinator):
        """2 far accesses per block (read + write) + 1 epoch bump."""
        c = cluster.client()
        deltas = []
        for count in (4, 8):
            region = ReplicatedRegion.create_framed(
                cluster.allocator, block_payload=PAYLOAD, block_count=count
            )
            coordinator.register(c, region)
            fill(region, c)
            dead = cluster.fabric.node_of(region.replicas[0])
            cluster.fabric.fail_node(dead)
            snap = c.metrics.snapshot()
            coordinator.run(c, dead)
            deltas.append(c.metrics.delta(snap).far_accesses)
            cluster.fabric.repair_node(dead)
            coordinator._regions.clear()
        assert deltas == [2 * 4 + 1, 2 * 8 + 1]

    def test_repair_streams_through_the_pipeline(self, cluster, coordinator, framed):
        """The copy overlaps its reads and writes (chunked windows), not
        one synchronous round trip per block."""
        c = cluster.client()
        coordinator.register(c, framed)
        fill(framed, c)
        dead = cluster.fabric.node_of(framed.replicas[0])
        cluster.fabric.fail_node(dead)
        snap = c.metrics.snapshot()
        coordinator.run(c, dead)
        delta = c.metrics.delta(snap)
        assert delta.overlap_saved_ns > 0
        # 12 blocks in chunks of 4: at most 3 read + 3 write windows (+faa).
        assert delta.pipeline_flushes <= 7

    def test_corrupt_source_block_healed_during_repair(self, cluster):
        """copies=3: the copy source has a rotten block, repair re-reads
        it verified from the remaining replica instead of propagating rot."""
        cluster_ = Cluster(node_count=5, node_size=NODE_SIZE)
        coordinator = RepairCoordinator(
            cluster_.allocator, home_node=4, chunk_blocks=4
        )
        region = ReplicatedRegion.create_framed(
            cluster_.allocator, block_payload=PAYLOAD, block_count=BLOCKS, copies=3
        )
        c = cluster_.client()
        coordinator.register(c, region)
        oracle = fill(region, c)

        dead = cluster_.fabric.node_of(region.replicas[0])
        cluster_.fabric.fail_node(dead)
        # Rot one block on the copy *source* (the first survivor).
        source = region.replicas[1]
        offset = 5 * frame_size(PAYLOAD)
        location = cluster_.fabric.locate(source + offset)
        cluster_.fabric.nodes[location.node].corrupt_bit(location.offset + 3, 2)

        report = coordinator.run(c, dead)
        assert report.source_verify_misses == 1
        rebuilt = region.replicas[0]
        for index, expected in oracle.items():
            frame = c.read(rebuilt + index * frame_size(PAYLOAD), frame_size(PAYLOAD))
            from repro.fabric import try_unframe

            version, payload = try_unframe(frame)
            assert payload == expected  # the rebuilt copy is clean

    def test_unframed_region_copied_raw(self, cluster, coordinator):
        c = cluster.client()
        region = ReplicatedRegion.create(cluster.allocator, 1024, copies=2)
        coordinator.register(c, region)
        region.write(c, 0, b"raw bytes" * 100)
        dead = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(dead)
        report = coordinator.run(c, dead)
        assert report.bytes_copied == 1024
        assert report.blocks_copied == 0
        assert region.read(c, 0, 900) == b"raw bytes" * 100
        assert region.live_replicas() == 2

    def test_no_spare_raises(self):
        # 3 copies on 3 nodes: when one dies, every surviving node
        # already holds a replica — redundancy cannot be restored.
        cluster = Cluster(node_count=3, node_size=NODE_SIZE)
        coordinator = RepairCoordinator(cluster.allocator, home_node=2)
        region = ReplicatedRegion.create_framed(
            cluster.allocator, block_payload=PAYLOAD, block_count=4, copies=3
        )
        c = cluster.client()
        coordinator.register(c, region)
        fill(region, c)
        dead = cluster.fabric.node_of(region.replicas[0])
        cluster.fabric.fail_node(dead)
        with pytest.raises(AllocationError):
            coordinator.run(c, dead)

    def test_no_survivors_raises_not_invents(self, cluster, coordinator, framed):
        c = cluster.client()
        coordinator.register(c, framed)
        for base in framed.replicas:
            cluster.fabric.fail_node(cluster.fabric.node_of(base))
        with pytest.raises(NodeUnavailableError):
            coordinator.run(c, cluster.fabric.node_of(framed.replicas[0]))

    def test_untouched_regions_pay_nothing(self, cluster, coordinator):
        c = cluster.client()
        a = ReplicatedRegion.create_framed(
            cluster.allocator, block_payload=PAYLOAD, block_count=4
        )
        coordinator.register(c, a)
        fill(a, c)
        # Fail a node hosting no replica of a: scan finds nothing to do.
        spare_only = next(
            n
            for n in range(4)
            if n not in {cluster.fabric.node_of(base) for base in a.replicas}
        )
        snap = c.metrics.snapshot()
        report = coordinator.run(c, spare_only)
        assert report.replicas_rebuilt == 0
        assert report.regions_scanned == 1
        assert c.metrics.delta(snap).far_accesses == 0
        assert a.epoch == 1  # epoch untouched: nobody needs to rejoin


class TestFencingProtocol:
    def test_stale_writer_fenced_then_rejoins(self, cluster, coordinator, framed):
        app = cluster.client("app")
        late = cluster.client("late")
        coordinator.register(app, framed)
        oracle = fill(framed, app)
        stale = framed.clone_view()

        dead = cluster.fabric.node_of(framed.replicas[0])
        cluster.fabric.fail_node(dead)
        coordinator.run(app, dead)
        assert framed.epoch == 2

        with pytest.raises(StaleEpochError):
            stale.write_block(late, 0, b"Z" * PAYLOAD)
        # The fence fired before any replica byte moved:
        assert framed.read_block(app, 0) == oracle[0]
        assert stale.stats.fence_rejects == 1

        assert stale.rejoin(late) == 2
        assert stale.replicas == framed.replicas
        stale.write_block(late, 0, b"Z" * PAYLOAD)
        assert framed.read_block(app, 0) == b"Z" * PAYLOAD

    def test_never_silent_lost_write(self, cluster, coordinator, framed):
        """The acceptance criterion verbatim: a fenced stale writer gets
        StaleEpochError — its write is *rejected*, not absorbed into a
        replica set that repair has moved elsewhere."""
        app = cluster.client("app")
        coordinator.register(app, framed)
        fill(framed, app)
        stale = framed.clone_view()
        old_replicas = list(stale.replicas)

        dead = cluster.fabric.node_of(framed.replicas[0])
        cluster.fabric.fail_node(dead)
        coordinator.run(app, dead)
        cluster.fabric.repair_node(dead)  # the old node comes back...

        # ...so the stale map's addresses are all writable again — the
        # epoch word is the ONLY thing standing between the stale writer
        # and a silent write to de-commissioned memory.
        before = [
            cluster.fabric.read(base, frame_size(PAYLOAD)).value
            for base in old_replicas
        ]
        with pytest.raises(StaleEpochError):
            stale.write_block(app, 0, b"!" * PAYLOAD)
        after = [
            cluster.fabric.read(base, frame_size(PAYLOAD)).value
            for base in old_replicas
        ]
        assert before == after

    def test_sequential_failures_two_repairs(self, cluster, coordinator, framed):
        c = cluster.client()
        coordinator.register(c, framed)
        oracle = fill(framed, c)
        for round_ in (1, 2):
            dead = cluster.fabric.node_of(framed.replicas[0])
            cluster.fabric.fail_node(dead)
            coordinator.run(c, dead)
            assert framed.epoch == 1 + round_
            assert framed.live_replicas() == 2
        for index, expected in oracle.items():
            assert framed.read_block(c, index) == expected
