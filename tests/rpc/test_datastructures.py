"""Unit tests for RPC-served data structures (the paper's competitors)."""

import pytest

from repro import Cluster
from repro.fabric.errors import QueueEmpty, QueueFull
from repro.rpc import RpcMap, RpcQueue, RpcServer, RpcVector

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


@pytest.fixture
def server():
    return RpcServer(service_ns=700)


class TestRpcMap:
    def test_roundtrip(self, cluster, server):
        m = RpcMap(server)
        c = cluster.client()
        m.put(c, 1, 10)
        assert m.get(c, 1) == 10
        assert m.get(c, 2) is None
        assert m.delete(c, 1)
        assert not m.delete(c, 1)
        assert len(m) == 0

    def test_every_op_is_exactly_one_rpc(self, cluster, server):
        m = RpcMap(server)
        c = cluster.client()
        snapshot = c.metrics.snapshot()
        m.put(c, 1, 10)
        m.get(c, 1)
        m.delete(c, 1)
        delta = c.metrics.delta(snapshot)
        assert delta.rpcs == 3
        assert delta.round_trips == 3
        assert delta.far_accesses == 0

    def test_lookup_cost_independent_of_size(self, cluster, server):
        # The RPC advantage: server-side chains cost no extra round trips.
        m = RpcMap(server)
        c = cluster.client()
        for k in range(10_000):
            m._data[k] = k  # bulk load server-side
        snapshot = c.metrics.snapshot()
        assert m.get(c, 9_999) == 9_999
        assert c.metrics.delta(snapshot).round_trips == 1


class TestRpcQueue:
    def test_fifo(self, cluster, server):
        q = RpcQueue(server)
        c = cluster.client()
        for i in range(5):
            q.enqueue(c, i)
        assert [q.dequeue(c) for _ in range(5)] == list(range(5))

    def test_empty_raises(self, cluster, server):
        q = RpcQueue(server)
        with pytest.raises(QueueEmpty):
            q.dequeue(cluster.client())
        assert q.try_dequeue(cluster.client()) is None

    def test_capacity(self, cluster, server):
        q = RpcQueue(server, capacity=2)
        c = cluster.client()
        q.enqueue(c, 1)
        q.enqueue(c, 2)
        with pytest.raises(QueueFull):
            q.enqueue(c, 3)

    def test_size(self, cluster, server):
        q = RpcQueue(server)
        c = cluster.client()
        q.enqueue(c, 1)
        assert q.size(c) == 1


class TestRpcVector:
    def test_roundtrip(self, cluster, server):
        v = RpcVector(server, 8)
        c = cluster.client()
        v.set(c, 3, 30)
        assert v.get(c, 3) == 30
        assert v.add(c, 3, 5) == 30
        assert v.get(c, 3) == 35

    def test_read_all(self, cluster, server):
        v = RpcVector(server, 4)
        c = cluster.client()
        v.set(c, 0, 1)
        assert v.read_all(c) == [1, 0, 0, 0]

    def test_bounds(self, cluster, server):
        v = RpcVector(server, 4)
        with pytest.raises(IndexError):
            v.get(cluster.client(), 4)

    def test_length_validated(self, server):
        with pytest.raises(ValueError):
            RpcVector(server, 0)

    def test_two_structures_one_server_share_cpu(self, cluster, server):
        # The shared-bottleneck property: ops on different structures
        # still serialize on the same memory-side processor.
        m = RpcMap(server)
        q = RpcQueue(server)
        c1, c2 = cluster.client(), cluster.client()
        m.put(c1, 1, 1)
        q.enqueue(c2, 1)
        assert server.stats.rpcs == 2
        assert c2.clock.now_ns > c1.clock.now_ns  # queued behind c1
