"""Unit tests for the RPC server cost model."""

import pytest

from repro import Cluster
from repro.fabric.errors import RpcError
from repro.rpc import RpcServer

NODE_SIZE = 8 << 20


@pytest.fixture
def cluster():
    return Cluster(node_count=1, node_size=NODE_SIZE)


class TestDispatch:
    def test_call_invokes_handler(self, cluster):
        server = RpcServer()
        server.register("echo", lambda x: x * 2)
        assert server.call(cluster.client(), "echo", 21) == 42

    def test_unknown_op_raises(self, cluster):
        with pytest.raises(RpcError):
            RpcServer().call(cluster.client(), "nope")

    def test_duplicate_registration_rejected(self):
        server = RpcServer()
        server.register("x", lambda: 1)
        with pytest.raises(RpcError):
            server.register("x", lambda: 2)


class TestCostModel:
    def test_uncontended_rpc_is_one_round_trip(self, cluster):
        # Section 3.1: an RPC "takes only one round trip over the fabric".
        server = RpcServer(service_ns=700, one_way_ns=500)
        server.register("noop", lambda: None)
        client = cluster.client()
        server.call(client, "noop")
        assert client.metrics.rpcs == 1
        assert client.metrics.round_trips == 1
        assert client.metrics.far_accesses == 0  # two-sided, not one-sided
        assert client.clock.now_ns == 500 + 700 + 500

    def test_serial_requests_queue_behind_each_other(self, cluster):
        server = RpcServer(service_ns=1000, one_way_ns=100)
        server.register("noop", lambda: None)
        a, b = cluster.client(), cluster.client()
        server.call(a, "noop")  # occupies the server [100, 1100]
        server.call(b, "noop")  # arrives at 100, starts at 1100
        assert b.clock.now_ns == 1100 + 1000 + 100
        assert server.stats.total_wait_ns == 1000

    def test_throughput_saturates_at_service_rate(self, cluster):
        server = RpcServer(service_ns=1000, one_way_ns=100)
        server.register("noop", lambda: None)
        clients = [cluster.client() for _ in range(8)]
        ops = 50
        for i in range(ops * len(clients)):
            server.call(clients[i % len(clients)], "noop")
        makespan = max(c.clock.now_ns for c in clients)
        throughput_per_ns = (ops * len(clients)) / makespan
        ceiling = 1 / server.service_ns
        assert throughput_per_ns <= ceiling * 1.01
        assert throughput_per_ns > ceiling * 0.9  # saturated, not idle

    def test_utilisation_reporting(self, cluster):
        server = RpcServer(service_ns=500, one_way_ns=100)
        server.register("noop", lambda: None)
        for _ in range(10):
            server.call(cluster.client(), "noop")
        assert 0 < server.stats.utilisation() <= 1.0
        assert server.stats.rpcs == 10

    def test_large_replies_pay_wire_time(self, cluster):
        server = RpcServer()
        server.register("blob", lambda: None)
        fast, slow = cluster.client(), cluster.client()
        server.reset_timeline()
        server.call(fast, "blob", reply_bytes=64)
        server.reset_timeline()
        server.call(slow, "blob", reply_bytes=64 * 1024)
        assert slow.clock.now_ns > fast.clock.now_ns

    def test_per_call_service_override(self, cluster):
        server = RpcServer(service_ns=100)
        server.register("scan", lambda: None)
        client = cluster.client()
        server.call(client, "scan", service_ns=10_000)
        assert server.stats.busy_ns == 10_000

    def test_reset_timeline(self, cluster):
        server = RpcServer()
        server.register("noop", lambda: None)
        server.call(cluster.client(), "noop")
        server.reset_timeline()
        assert server.stats.rpcs == 0
