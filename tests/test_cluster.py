"""Unit tests for the Cluster convenience wiring."""

import pytest

from repro import Cluster, IndirectionPolicy
from repro.fabric import InterleavedPlacement, RangePlacement

NODE_SIZE = 8 << 20


class TestConstruction:
    def test_default_is_range_placed(self):
        cluster = Cluster(node_count=3, node_size=NODE_SIZE)
        assert isinstance(cluster.fabric.placement, RangePlacement)
        assert cluster.fabric.placement.node_count == 3

    def test_interleaved(self):
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE, interleaved=True,
            interleave_granularity=8192,
        )
        assert isinstance(cluster.fabric.placement, InterleavedPlacement)
        assert cluster.fabric.placement.granularity == 8192

    def test_indirection_policy_threads_through(self):
        cluster = Cluster(
            node_count=2, node_size=NODE_SIZE,
            indirection_policy=IndirectionPolicy.ERROR,
        )
        assert cluster.fabric.indirection_policy is IndirectionPolicy.ERROR

    def test_notifications_attached(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        assert cluster.fabric._notifier is cluster.notifications


class TestClients:
    def test_client_registration(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        a = cluster.client("a")
        b = cluster.client()
        assert cluster.clients == [a, b]
        assert a.name == "a"

    def test_total_metrics(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        a, b = cluster.client(), cluster.client()
        addr = cluster.allocator.alloc_words(1)
        a.write_u64(addr, 1)
        b.read_u64(addr)
        b.read_u64(addr)
        assert cluster.total_metrics().far_accesses == 3

    def test_reset_metrics(self):
        cluster = Cluster(node_count=1, node_size=NODE_SIZE)
        client = cluster.client()
        client.write_u64(cluster.allocator.alloc_words(1), 1)
        cluster.reset_metrics()
        assert client.metrics.far_accesses == 0
        assert client.clock.now_ns == 0


class TestFactories:
    @pytest.fixture
    def cluster(self):
        return Cluster(node_count=1, node_size=NODE_SIZE)

    def test_every_factory_builds(self, cluster):
        client = cluster.client()
        assert cluster.far_counter().read(client) == 0
        assert cluster.far_vector(4).get(client, 0) == 0
        assert cluster.far_mutex().try_acquire(client)
        assert cluster.far_barrier(1).arrive(client).is_last
        tree = cluster.ht_tree(bucket_count=16)
        tree.put(client, 1, 1)
        queue = cluster.far_queue(capacity=16, max_clients=2)
        queue.enqueue(client, 1)
        vector = cluster.refreshable_vector(8, group_size=4)
        vector.set(client, 0, 1)
        stack = cluster.far_stack()
        stack.push(client, 1)
        assert cluster.far_rwlock().try_acquire_read(client)
        assert cluster.far_semaphore(1).try_acquire(client)
        store = cluster.blob_store()
        store.put(client, 1, b"x")
        assert store.get(client, 1) == b"x"
        registry = cluster.registry(capacity=8)
        registry.register(client, "n", 1, b"p")
        reclaimer = cluster.reclaimer()
        assert reclaimer.stats.pending == 0

    def test_repr(self, cluster):
        cluster.client()
        assert "clients=1" in repr(cluster)
