"""Smoke tests: every example script must run to completion.

Each example asserts its own claims internally; here we only require a
clean exit. The slowest examples are marked ``slow`` so the default run
stays fast (run them with ``pytest -m slow``).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "fault_tolerance.py",
    "lost_update.py",
    "node_repair.py",
    "elastic_cluster.py",
    "bank_transfer.py",
]
SLOW = [
    "monitoring.py",
    "parameter_server.py",
    "work_queue.py",
    "map_comparison.py",
    "kvstore_service.py",
]


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamplesFast:
    @pytest.mark.parametrize("script", FAST)
    def test_example_runs(self, script):
        result = _run(script)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip(), "examples must narrate their run"


@pytest.mark.slow
class TestExamplesSlow:
    @pytest.mark.parametrize("script", SLOW)
    def test_example_runs(self, script):
        result = _run(script)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()
