"""Smoke tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import main


def test_demo_prints_profile_and_trace_summary(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "far accesses" in out
    assert "trace summary" in out
    assert "far-access latency by fabric op" in out
    # The demo's label table and the histogram table both rendered.
    assert "ht-tree put x100" in out
    assert "p50 ns" in out


def test_trace_subcommand_exports_and_validates(tmp_path, capsys):
    assert main(["trace", "quickstart", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "passed schema validation" in out

    jsonl_path = tmp_path / "quickstart.trace.jsonl"
    chrome_path = tmp_path / "quickstart.trace.json"
    assert jsonl_path.is_file() and chrome_path.is_file()

    lines = jsonl_path.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta["schema"] == "repro-trace-v1"
    assert meta["spans"] + meta["events"] + 1 == len(lines)

    document = json.loads(chrome_path.read_text())
    assert document["traceEvents"]

    # The validate subcommand accepts its own export.
    assert main(["validate", str(chrome_path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_rejects_tampered_trace(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text(
        json.dumps(
            {
                "traceEvents": [
                    {"ph": "B", "name": "x", "pid": 1, "tid": 0, "ts": 0}
                ]
            }
        )
    )
    assert main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_trace_unknown_target_is_an_error():
    with pytest.raises(SystemExit, match="cannot find"):
        main(["trace", "no-such-example"])
