"""Smoke tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import main


def test_demo_prints_profile_and_trace_summary(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "far accesses" in out
    assert "trace summary" in out
    assert "far-access latency by fabric op" in out
    # The demo's label table and the histogram table both rendered.
    assert "ht-tree put x100" in out
    assert "p50 ns" in out


def test_trace_subcommand_exports_and_validates(tmp_path, capsys):
    assert main(["trace", "quickstart", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "passed schema validation" in out

    jsonl_path = tmp_path / "quickstart.trace.jsonl"
    chrome_path = tmp_path / "quickstart.trace.json"
    assert jsonl_path.is_file() and chrome_path.is_file()

    lines = jsonl_path.read_text().splitlines()
    meta = json.loads(lines[0])
    assert meta["schema"] == "repro-trace-v1"
    assert meta["spans"] + meta["events"] + 1 == len(lines)

    document = json.loads(chrome_path.read_text())
    assert document["traceEvents"]

    # The validate subcommand accepts its own export.
    assert main(["validate", str(chrome_path)]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_rejects_tampered_trace(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text(
        json.dumps(
            {
                "traceEvents": [
                    {"ph": "B", "name": "x", "pid": 1, "tid": 0, "ts": 0}
                ]
            }
        )
    )
    assert main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_trace_unknown_target_is_an_error():
    with pytest.raises(SystemExit, match="cannot find"):
        main(["trace", "no-such-example"])


def test_lint_subcommand_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def zero(client, addrs):\n"
        "    for addr in addrs:\n"
        "        client.write_u64(addr, 0)\n"
    )
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "FM001" in out and "1 finding(s)" in out

    good = tmp_path / "good.py"
    good.write_text("def add(a, b):\n    return a + b\n")
    assert main(["lint", str(good)]) == 0
    assert "fmlint: clean" in capsys.readouterr().out

    assert main(["lint", "--list-rules"]) == 0
    assert "sync-far-op-in-loop" in capsys.readouterr().out


def test_sanitize_subcommand_reports_budgets(tmp_path, capsys):
    script = tmp_path / "counter_demo.py"
    script.write_text(
        "from repro import Cluster\n"
        "cluster = Cluster(node_count=1, node_size=8 << 20)\n"
        "client = cluster.client('demo')\n"
        "counter = cluster.far_counter()\n"
        "for _ in range(3):\n"
        "    counter.increment(client)\n"
        "print('value', counter.read(client))\n"
    )
    assert main(["sanitize", str(script)]) == 0
    out = capsys.readouterr().out
    assert "FarCounter.increment" in out and "C2" in out


def test_sanitize_subcommand_fails_on_violations(tmp_path, capsys):
    script = tmp_path / "over_budget.py"
    script.write_text(
        "from repro import Cluster\n"
        "from repro.analysis.budget import far_budget\n"
        "\n"
        "class Chatty:\n"
        "    @far_budget(0, ceiling=0)\n"
        "    def op(self, client, addr):\n"
        "        return client.read_u64(addr)\n"
        "\n"
        "cluster = Cluster(node_count=1, node_size=8 << 20)\n"
        "client = cluster.client('demo')\n"
        "Chatty().op(client, cluster.allocator.alloc(8))\n"
        "print('ran')\n"
    )
    assert main(["sanitize", str(script), "--no-strict"]) == 1
    assert "budget violation" in capsys.readouterr().out


def test_topology_subcommand_renders_table(capsys):
    assert main(["topology"]) == 0
    out = capsys.readouterr().out
    assert "virtual address space" in out
    assert "extents of 262144 bytes" in out
    assert "free_slots" in out  # per-node table header


def test_topology_demo_shows_drain_and_remaps(capsys):
    assert main(["topology", "--demo"]) == 0
    out = capsys.readouterr().out
    assert "(17 remapped" in out  # migrate + full drain of the last node
    assert "yes" in out  # drained column marker
    assert "*" in out  # remapped-extent flag


def test_topology_json_is_machine_readable(capsys):
    assert main(["topology", "--json", "--nodes", "3"]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert dump["extent_size"] == 262144
    assert len(dump["nodes"]) == 3
    assert dump["extent_count"] == len(dump["extents"])
    assert all(not info["remapped"] for info in dump["extents"])


def test_stats_subcommand_renders_and_exports(tmp_path, capsys):
    assert main(["stats", "quickstart", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "live telemetry of" in out
    assert "== repro top @" in out
    assert "-- fleet --" in out and "-- SLOs --" in out
    assert "timeout-ratio" in out

    prom = tmp_path / "quickstart.prom"
    jsonl = tmp_path / "quickstart.metrics.jsonl"
    assert prom.is_file() and jsonl.is_file()
    text = prom.read_text()
    assert "# TYPE repro_far_accesses_total counter" in text
    assert 'repro_far_accesses_total{scope="fleet"}' in text
    meta = json.loads(jsonl.read_text().splitlines()[0])
    assert meta["schema"] == "repro-telemetry-v1"


def test_stats_forbid_alerts_gate_on_clean_run(capsys):
    assert main(["stats", "quickstart", "--forbid-alerts"]) == 0
    assert "no SLO alerts fired" in capsys.readouterr().out


def test_stats_expect_alerts_gate_on_fault_burst(capsys):
    assert main(["stats", "fault_burst", "--expect-alerts"]) == 0
    out = capsys.readouterr().out
    assert "timeout-ratio" in out
    assert "FIRING" in out or "alert" in out


def test_stats_expect_alerts_fails_when_clean(capsys):
    assert main(["stats", "quickstart", "--expect-alerts"]) == 1
    assert "expected SLO alerts" in capsys.readouterr().out


def test_stats_forbid_alerts_fails_under_faults(capsys):
    assert main(["stats", "fault_burst", "--forbid-alerts"]) == 1
    assert "unexpected SLO alert" in capsys.readouterr().out


def test_top_once_renders_final_frame(capsys):
    assert main(["top", "quickstart", "--once"]) == 0
    out = capsys.readouterr().out
    assert "final frame" in out
    assert "-- extent heat --" in out
    assert "httree" in out


def test_top_unknown_target_is_an_error():
    with pytest.raises(SystemExit, match="cannot find"):
        main(["top", "no-such-example"])


def test_top_shows_drained_layout_after_migration(capsys):
    """`repro top --once` over the elastic-cluster drain: the node table
    marks the drained node and the extent table shows new homes."""
    assert main(["top", "elastic_cluster", "--once"]) == 0
    out = capsys.readouterr().out
    assert "drained" in out
    assert "remaps" in out
    assert "migration" in out  # the coordinator's structure scope


def test_cost_subcommand_certifies_the_repo(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "HTTree.get" in out and "0 failing" in out


def test_cost_check_matches_committed_baseline(capsys):
    assert main(["cost", "--check"]) == 0
    assert "matches baseline" in capsys.readouterr().out


def test_cost_out_writes_certificate(tmp_path, capsys):
    cert_path = tmp_path / "cost.json"
    assert main(["cost", "--out", str(cert_path)]) == 0
    capsys.readouterr()
    cert = json.loads(cert_path.read_text())
    assert cert["format"] == "fmcost-cert-v1"
    assert any(
        r["structure"] == "FarQueue" and r["op"] == "enqueue"
        for r in cert["records"]
    )


def test_cost_check_fails_against_a_tampered_baseline(tmp_path, capsys):
    cert_path = tmp_path / "cost.json"
    assert main(["cost", "--out", str(cert_path)]) == 0
    capsys.readouterr()
    cert = json.loads(cert_path.read_text())
    for record in cert["records"]:
        if record["structure"] == "HTTree" and record["op"] == "get":
            record["inferred"]["fast"] = "9"
    tampered = tmp_path / "baseline.json"
    tampered.write_text(json.dumps(cert))
    assert main(["cost", "--check", "--baseline", str(tampered)]) == 1
    out = capsys.readouterr().out
    assert "HTTree.get" in out and "--update-baseline" in out


def test_cost_fails_on_overbudget_fixture(capsys):
    import os

    fixture = os.path.join(
        os.path.dirname(__file__), "analysis", "overbudget_fixture.py"
    )
    assert (
        main(["cost", fixture, "--structures", "OverBudgetRegister"]) == 1
    )
    out = capsys.readouterr().out
    assert "regression" in out and "over_ceiling" in out


def test_check_subcommand_combines_gates(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    assert main(["check", "--report", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "check: OK" in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["lint"]["findings"] == []
    assert report["cost"]["failures"] == []
    assert report["cost"]["baseline_diffs"] == []


def test_check_subcommand_fails_on_lint_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def zero(client, addrs):\n"
        "    for addr in addrs:\n"
        "        client.write_u64(addr, 0)\n"
    )
    assert main(["check", str(bad)]) == 1
    assert "check: FAILED" in capsys.readouterr().out


def test_check_subcommand_runs_sanitized_examples(capsys):
    assert main(["check", "--sanitize", "quickstart"]) == 0
    out = capsys.readouterr().out
    assert "check: OK" in out
