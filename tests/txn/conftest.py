"""Shared fixtures for the transaction tests: a small-extent cluster
(so cells land in distinct extents cheaply) and helpers that seed
framed cells with distinct guarding slots."""

import pytest

from repro import Cluster

EXTENT = 64 << 10
PAYLOAD = 8


def txn_cluster(**kwargs):
    return Cluster(
        node_count=2, node_size=8 << 20, extent_size=EXTENT, **kwargs
    )


@pytest.fixture
def cluster():
    return txn_cluster()


def seed_cells(cluster, space, client, count, *, value=None):
    """Allocate ``count`` framed cells, one per extent, with pairwise
    distinct version-word slots, seeded with 8-byte payloads."""
    cells = []
    used = set()
    while len(cells) < count:
        base = cluster.allocator.alloc(EXTENT)
        slot = space.slot_for_addr(base)
        if slot in used:
            continue
        used.add(slot)
        payload = value if value is not None else bytes([len(cells) + 1]) * PAYLOAD
        space.init_cell(client, base, payload)
        cells.append(base)
    return cells
