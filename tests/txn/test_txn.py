"""repro.txn protocol tests: atomic visibility, conflicts, exact
far-access costs (the DESIGN.md §15 commit formula), budgets under the
sanitizer, retry/backoff, stale-epoch aborts, and trace events."""

import pytest

from repro import Cluster, Transaction, TxnAbortError, TxnConflictError, TxnSpace
from repro.analysis.budget import BudgetSanitizer
from repro.fabric import MigrationWritePolicy
from repro.fabric.errors import StaleEpochError
from repro.fabric.integrity import frame_size
from repro.fabric.wire import WORD, decode_u64, encode_u64
from repro.obs import Tracer

from .conftest import EXTENT, PAYLOAD, seed_cells, txn_cluster


def _word(client, space, slot):
    return decode_u64(client.read(space.version_addr(slot), WORD))


class TestProtocol:
    def test_commit_is_atomic_and_versioned(self, cluster):
        c1 = cluster.client("writer")
        c2 = cluster.client("reader")
        space = cluster.txn_space(c1)
        a, b = seed_cells(cluster, space, c1, 2)

        txn = space.begin(c1)
        space.write(c1, txn, a, b"A" * PAYLOAD)
        space.write(c1, txn, b, b"B" * PAYLOAD)
        # Nothing is visible before commit.
        _, old_a = c2.read_verified(a, PAYLOAD)
        assert old_a == bytes([1]) * PAYLOAD
        space.commit(c1, txn)
        assert txn.state == "committed"

        version_a, new_a = c2.read_verified(a, PAYLOAD)
        version_b, new_b = c2.read_verified(b, PAYLOAD)
        assert (new_a, new_b) == (b"A" * PAYLOAD, b"B" * PAYLOAD)
        # Both guarding words advanced by exactly 2 and are unlocked.
        assert version_a == 2 and version_b == 2
        for addr in (a, b):
            assert _word(c1, space, space.slot_for_addr(addr)) == 2

    def test_read_your_writes_and_read_only_reads(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        txn = space.begin(c1)
        assert space.read(c1, txn, a, PAYLOAD) == bytes([1]) * PAYLOAD
        space.write(c1, txn, a, b"N" * PAYLOAD)
        assert space.read(c1, txn, a, PAYLOAD) == b"N" * PAYLOAD
        space.commit(c1, txn)

    def test_abort_discards_buffered_writes(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        txn = space.begin(c1)
        space.write(c1, txn, a, b"X" * PAYLOAD)
        before = c1.metrics.far_accesses
        space.abort(c1, txn)
        assert c1.metrics.far_accesses == before  # abort is free
        assert txn.state == "aborted"
        assert c1.metrics.txn_aborts == 1
        _, payload = c1.read_verified(a, PAYLOAD)
        assert payload == bytes([1]) * PAYLOAD
        with pytest.raises(TxnAbortError) as err:
            space.read(c1, txn, a, PAYLOAD)
        assert not err.value.retryable

    def test_read_write_conflict_aborts_reader(self, cluster):
        c1 = cluster.client("reader")
        c2 = cluster.client("writer")
        space = cluster.txn_space(c1)
        a, b = seed_cells(cluster, space, c1, 2)

        txn = space.begin(c1)
        space.read(c1, txn, a, PAYLOAD)
        space.write(c1, txn, b, b"B" * PAYLOAD)

        other = space.begin(c2)
        space.write(c2, other, a, b"Z" * PAYLOAD)
        space.commit(c2, other)

        with pytest.raises(TxnConflictError) as err:
            space.commit(c1, txn)
        assert err.value.reason == "version_changed"
        assert c1.metrics.txn_conflicts == 1
        # The aborted writer's lock was restored: slot b is even again.
        assert _word(c1, space, space.slot_for_addr(b)) == 0

    def test_write_write_conflict_fails_lock(self, cluster):
        c1 = cluster.client()
        c2 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)

        txn1 = space.begin(c1)
        space.write(c1, txn1, a, b"1" * PAYLOAD)
        txn2 = space.begin(c2)
        space.write(c2, txn2, a, b"2" * PAYLOAD)
        space.commit(c1, txn1)
        with pytest.raises(TxnConflictError) as err:
            space.commit(c2, txn2)
        assert err.value.reason == "lock_failed"
        # Loser retries cleanly against the new version.
        retry = space.begin(c2, attempt=2)
        assert space.read(c2, retry, a, PAYLOAD) == b"1" * PAYLOAD
        space.write(c2, retry, a, b"2" * PAYLOAD)
        space.commit(c2, retry)
        _, payload = c1.read_verified(a, PAYLOAD)
        assert payload == b"2" * PAYLOAD

    def test_locked_slot_blocks_new_tracker(self, cluster):
        c1 = cluster.client()
        c2 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        slot = space.slot_for_addr(a)
        # Hand-hold the lock the way a mid-commit owner would.
        c1.write_u64(space.version_addr(slot), space.locked_word(c1.client_id, 0))
        txn = space.begin(c2)
        with pytest.raises(TxnConflictError) as err:
            space.read(c2, txn, a, PAYLOAD)
        assert err.value.reason == "locked"

    def test_record_overflow_is_clean_and_final(self, cluster):
        c1 = cluster.client()
        space = TxnSpace.create(
            cluster.allocator, c1, n_slots=16, record_capacity=64
        )
        (a,) = seed_cells(cluster, space, c1, 1)
        txn = space.begin(c1)
        space.write(c1, txn, a, b"x" * PAYLOAD)
        txn.cell_writes[a] = b"y" * 128  # larger than the record
        with pytest.raises(TxnAbortError) as err:
            space.commit(c1, txn)
        assert err.value.reason.startswith("record_overflow")
        assert not err.value.retryable
        assert txn.state == "aborted"
        # Nothing was locked and nothing moved.
        assert _word(c1, space, space.slot_for_addr(a)) == 0

    def test_registration_full_is_clean_and_final(self, cluster):
        c1 = cluster.client()
        c2 = cluster.client()
        space = TxnSpace.create(cluster.allocator, c1, max_clients=1)
        a, b = seed_cells(cluster, space, c1, 2)
        txn = space.begin(c1)
        space.write(c1, txn, a, b"1" * PAYLOAD)
        space.commit(c1, txn)  # claims the only registration slot

        txn2 = space.begin(c2)
        space.write(c2, txn2, b, b"2" * PAYLOAD)
        with pytest.raises(TxnAbortError) as err:
            space.commit(c2, txn2)
        assert err.value.reason == "registration_full"
        assert not err.value.retryable
        assert _word(c1, space, space.slot_for_addr(b)) == 0  # no lock leaked


class TestCommitCost:
    """The §15 formula: commit = W + R + C + W + 2 (warm, registered)."""

    def test_cell_commit_matches_formula(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        a, b, r = seed_cells(cluster, space, c1, 3)
        space.register(c1)  # pre-pay the one-time registration probe

        txn = space.begin(c1)
        space.read(c1, txn, r, PAYLOAD)  # R = 1
        space.write(c1, txn, a, b"A" * PAYLOAD)  # W slots: a, b (distinct
        space.write(c1, txn, b, b"B" * PAYLOAD)  # extents -> 2 runs too)
        before = c1.metrics.far_accesses
        space.commit(c1, txn)
        delta = c1.metrics.far_accesses - before
        W, R, C = 2, 1, 2
        assert delta == W + R + C + W + 2

    def test_contiguous_cells_share_one_scatter(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        base = cluster.allocator.alloc(EXTENT)
        space.init_cell(c1, base, bytes(PAYLOAD))
        space.init_cell(c1, base + frame_size(PAYLOAD), bytes(PAYLOAD))
        space.register(c1)

        txn = space.begin(c1)
        space.write(c1, txn, base, b"a" * PAYLOAD)
        space.write(c1, txn, base + frame_size(PAYLOAD), b"b" * PAYLOAD)
        before = c1.metrics.far_accesses
        space.commit(c1, txn)
        # Same extent: one shared slot (W=1), one contiguous run (C=1).
        assert c1.metrics.far_accesses - before == 1 + 0 + 1 + 1 + 2

    def test_read_only_commit_costs_validation_only(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        a, b = seed_cells(cluster, space, c1, 2)
        txn = space.begin(c1)
        space.read(c1, txn, a, PAYLOAD)
        space.read(c1, txn, b, PAYLOAD)
        before = c1.metrics.far_accesses
        space.commit(c1, txn)
        assert c1.metrics.far_accesses - before == 2  # R, no seal/record

    def test_empty_commit_is_free(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        txn = space.begin(c1)
        before = c1.metrics.far_accesses
        space.commit(c1, txn)
        assert c1.metrics.far_accesses - before == 0
        assert txn.state == "committed"

    def test_budgets_hold_under_sanitizer(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        a, b = seed_cells(cluster, space, c1, 2)
        space.register(c1)
        with BudgetSanitizer() as san:
            txn = space.begin(c1)
            space.read(c1, txn, a, PAYLOAD)
            space.write(c1, txn, b, b"W" * PAYLOAD)
            space.read(c1, txn, b, PAYLOAD)  # buffered: free
            space.commit(c1, txn)
        assert san.records["TxnSpace.read"].max_delta <= 2
        assert san.records["TxnSpace.write"].max_delta <= 1
        assert "TxnSpace.commit" in san.records


class TestComposition:
    def test_context_manager_commits_on_exit(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        with c1.transaction(space) as txn:
            space.write(c1, txn, a, b"C" * PAYLOAD)
        assert txn.state == "committed"
        _, payload = c1.read_verified(a, PAYLOAD)
        assert payload == b"C" * PAYLOAD

    def test_context_manager_aborts_on_exception(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        with pytest.raises(RuntimeError):
            with c1.transaction(space) as txn:
                space.write(c1, txn, a, b"X" * PAYLOAD)
                raise RuntimeError("boom")
        assert txn.state == "aborted"
        _, payload = c1.read_verified(a, PAYLOAD)
        assert payload == bytes([1]) * PAYLOAD

    def test_run_retries_conflicts_with_backoff(self, cluster):
        c1 = cluster.client()
        c2 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        attempts = []

        def body(txn):
            attempts.append(txn.attempt)
            space.read(c1, txn, a, PAYLOAD)
            if len(attempts) == 1:
                # A rival commits between our read and our commit.
                rival = space.begin(c2)
                space.write(c2, rival, a, b"R" * PAYLOAD)
                space.commit(c2, rival)
            space.write(c1, txn, a, b"M" * PAYLOAD)
            return "done"

        assert c1.run_transaction(space, body) == "done"
        assert attempts == [1, 2]
        assert c1.metrics.retries == 1
        assert c1.metrics.backoff_ns > 0
        assert c1.metrics.txn_conflicts == 1 and c1.metrics.txn_commits == 1

    def test_run_gives_up_after_max_attempts(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        slot = space.slot_for_addr(a)
        c1.write_u64(space.version_addr(slot), space.locked_word(9, 0))
        with pytest.raises(TxnConflictError):
            space.run(
                c1, lambda txn: space.read(c1, txn, a, PAYLOAD), max_attempts=3
            )
        assert c1.metrics.txn_aborts == 3

    def test_run_does_not_retry_final_aborts(self, cluster):
        c1 = cluster.client()
        space = TxnSpace.create(cluster.allocator, c1, record_capacity=64)
        (a,) = seed_cells(cluster, space, c1, 1)
        calls = []

        def body(txn):
            calls.append(txn.attempt)
            space.write(c1, txn, a, b"x" * PAYLOAD)
            txn.cell_writes[a] = b"y" * 128

        with pytest.raises(TxnAbortError):
            space.run(c1, body)
        assert calls == [1]


class TestStaleEpoch:
    def test_fenced_extent_aborts_cleanly_then_retries(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        spare = cluster.add_node()
        table_extent = space.table // EXTENT
        handle = cluster.migration.begin(
            c1, table_extent, spare, policy=MigrationWritePolicy.FENCE
        )
        handle.step()
        txn = space.begin(c1)
        with pytest.raises(TxnAbortError) as err:
            space.read(c1, txn, a, PAYLOAD)
        assert err.value.reason == "stale_epoch"
        assert txn.state == "aborted"
        handle.run()  # migration commits; the epoch fence lifts
        retry = space.begin(c1, attempt=2)
        assert space.read(c1, retry, a, PAYLOAD) == bytes([1]) * PAYLOAD
        space.commit(c1, retry)


class TestTraceEvents:
    def test_commit_and_abort_emit_events(self, cluster):
        c1 = cluster.client()
        tracer = Tracer()
        tracer.attach(c1)
        space = cluster.txn_space(c1)
        a, b = seed_cells(cluster, space, c1, 2)

        txn = space.begin(c1)
        space.read(c1, txn, a, PAYLOAD)
        space.write(c1, txn, b, b"T" * PAYLOAD)
        space.commit(c1, txn)
        space.abort(c1, space.begin(c1), reason="user")

        begin = tracer.events_by_kind("txn_begin")
        assert begin and begin[0].data["txn_id"] == txn.txn_id
        validate = tracer.events_by_kind("txn_validate")
        assert validate[0].data == {
            "txn_id": txn.txn_id,
            "read_slots": 1,
            "write_slots": 1,
            "ok": True,
        }
        commit = tracer.events_by_kind("txn_commit")
        assert commit[0].data["cells"] == 1 and commit[0].data["runs"] == 1
        abort = tracer.events_by_kind("txn_abort")
        assert abort[0].data["reason"] == "user"

    def test_tracing_has_zero_observer_effect(self):
        def workload(traced):
            cluster = txn_cluster()
            c1 = cluster.client("t")
            tracer = Tracer() if traced else None
            if tracer is not None:
                tracer.attach(c1)
            space = cluster.txn_space(c1)
            a, b = seed_cells(cluster, space, c1, 2)
            txn = space.begin(c1)
            space.read(c1, txn, a, PAYLOAD)
            space.write(c1, txn, b, encode_u64(7))
            space.commit(c1, txn)
            return c1.metrics, c1.clock

        base_metrics, base_clock = workload(traced=False)
        traced_metrics, traced_clock = workload(traced=True)
        assert traced_metrics.as_dict() == base_metrics.as_dict()
        assert traced_clock.now_ns == base_clock.now_ns


class TestExports:
    def test_public_surface(self):
        import repro

        for name in ("Transaction", "TxnAbortError", "TxnConflictError", "TxnSpace"):
            assert name in repro.__all__ and hasattr(repro, name)
        assert issubclass(TxnConflictError, TxnAbortError)
        assert Transaction(txn_id=1, client_id=0).read_only
