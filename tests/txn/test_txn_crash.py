"""Crash-stop tests for every commit phase: a client killed before the
lock, holding locks, after the seal, or mid write-back must leave no
torn state once :meth:`TxnSpace.recover` runs — pre-seal crashes roll
back (old values), post-seal crashes roll forward (new values)."""

import pytest

from repro.fabric.errors import FabricError
from repro.fabric.wire import WORD, decode_u64

from .conftest import PAYLOAD, seed_cells

OLD = (bytes([1]) * PAYLOAD, bytes([2]) * PAYLOAD)
NEW = (b"A" * PAYLOAD, b"B" * PAYLOAD)


def _crash_commit(cluster, phase):
    """Run a two-cell transaction whose owner crashes at ``phase``;
    returns (space, victim, cells)."""
    victim = cluster.client("victim")
    space = cluster.txn_space(victim)
    cells = seed_cells(cluster, space, victim, 2)

    def hook(at, client):
        if at == phase:
            space.crash_hook = None
            client.crash()

    space.crash_hook = hook
    txn = space.begin(victim)
    for addr, payload in zip(cells, NEW):
        space.write(victim, txn, addr, payload)
    with pytest.raises(FabricError):
        space.commit(victim, txn)
    return space, victim, cells


def _state(client, space, cells):
    payloads = tuple(
        client.read_verified(addr, PAYLOAD)[1] for addr in cells
    )
    words = tuple(
        decode_u64(client.read(space.version_addr(space.slot_for_addr(a)), WORD))
        for a in cells
    )
    return payloads, words


class TestCrashPhases:
    @pytest.mark.parametrize("phase", ["before_lock", "after_lock"])
    def test_pre_seal_crash_rolls_back(self, cluster, phase):
        space, victim, cells = _crash_commit(cluster, phase)
        surgeon = cluster.client("surgeon")
        report = space.recover(surgeon, victim.client_id)
        assert report.action == ("none" if phase == "before_lock" else "rollback")
        payloads, words = _state(surgeon, space, cells)
        assert payloads == OLD, "pre-seal crash must leave old values"
        assert words == (0, 0), "every lock restored to its even version"
        assert report.cells_written == 0
        if phase == "after_lock":
            assert report.slots_released == 2
            assert surgeon.metrics.txn_rollbacks == 1

    @pytest.mark.parametrize("phase", ["after_seal", "mid_writeback"])
    def test_post_seal_crash_rolls_forward(self, cluster, phase):
        space, victim, cells = _crash_commit(cluster, phase)
        surgeon = cluster.client("surgeon")
        report = space.recover(surgeon, victim.client_id)
        assert report.action == "rollforward"
        payloads, words = _state(surgeon, space, cells)
        assert payloads == NEW, "post-seal crash must complete the commit"
        assert words == (2, 2), "every lock advanced past the commit"
        assert report.slots_released == 2
        assert report.cells_written == 2  # idempotent rewrite of both
        assert surgeon.metrics.txn_rollforwards == 1

    @pytest.mark.parametrize("phase", ["after_lock", "after_seal"])
    def test_recovery_is_idempotent(self, cluster, phase):
        space, victim, cells = _crash_commit(cluster, phase)
        surgeon = cluster.client("surgeon")
        first = space.recover(surgeon, victim.client_id)
        assert first.action in ("rollback", "rollforward")
        again = space.recover(surgeon, victim.client_id)
        assert again.action == "none"
        assert again.slots_released == 0
        _, words = _state(surgeon, space, cells)
        assert words == ((0, 0) if phase == "after_lock" else (2, 2))

    def test_cells_stay_writable_after_recovery(self, cluster):
        space, victim, cells = _crash_commit(cluster, "after_lock")
        surgeon = cluster.client("surgeon")
        space.recover(surgeon, victim.client_id)
        txn = space.begin(surgeon)
        for addr in cells:
            space.write(surgeon, txn, addr, b"S" * PAYLOAD)
        space.commit(surgeon, txn)
        payloads, words = _state(surgeon, space, cells)
        assert payloads == (b"S" * PAYLOAD,) * 2
        assert words == (2, 2)

    def test_unknown_owner_is_a_noop(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        report = space.recover(c1, 999)
        assert report.action == "none"

    def test_healthy_registered_owner_is_a_noop(self, cluster):
        c1 = cluster.client()
        space = cluster.txn_space(c1)
        (a,) = seed_cells(cluster, space, c1, 1)
        txn = space.begin(c1)
        space.write(c1, txn, a, b"H" * PAYLOAD)
        space.commit(c1, txn)  # clean commit: record tombstoned
        surgeon = cluster.client("surgeon")
        report = space.recover(surgeon, c1.client_id)
        assert report.action == "none"
        _, payload = surgeon.read_verified(a, PAYLOAD)
        assert payload == b"H" * PAYLOAD
