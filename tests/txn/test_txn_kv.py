"""Transactional FarKVStore tests: buffered puts, read-modify-write,
conflicts between stores' clients, and crash recovery that replays the
sealed KV pointers through ``recover(stores=...)``."""

import pytest

from repro import TxnConflictError
from repro.apps.kvstore import FarKVStore
from repro.fabric.errors import FabricError

from .conftest import seed_cells


@pytest.fixture
def setup(cluster):
    client = cluster.client("kv")
    registry = cluster.registry()
    store = FarKVStore.create(cluster, registry, client, "bank", bucket_count=64)
    space = cluster.txn_space(client)
    return cluster, client, store, space


class TestKvTxn:
    def test_multiput_commits_atomically(self, setup):
        cluster, c1, store, space = setup
        store.put(c1, "a", b"old")
        c2 = cluster.client()
        txn = space.begin(c1)
        store.txn_multiput(c1, space, txn, [("a", b"new"), ("b", b"born")])
        # Buffered: our reads see it, the other client does not.
        assert store.txn_get(c1, space, txn, "a") == b"new"
        assert store.get(c2, "a") == b"old"
        assert store.get(c2, "b") is None
        space.commit(c1, txn)
        assert store.get(c2, "a") == b"new"
        assert store.get(c2, "b") == b"born"

    def test_update_is_read_modify_write(self, setup):
        _, c1, store, space = setup
        store.put(c1, "n", (7).to_bytes(8, "little"))

        def bump(raw):
            return (int.from_bytes(raw, "little") + 5).to_bytes(8, "little")

        txn = space.begin(c1)
        new = store.txn_update(c1, space, txn, "n", bump)
        space.commit(c1, txn)
        assert int.from_bytes(new, "little") == 12
        assert int.from_bytes(store.get(c1, "n"), "little") == 12

    def test_update_default_for_missing_key(self, setup):
        _, c1, store, space = setup
        txn = space.begin(c1)
        store.txn_update(
            c1, space, txn, "fresh", lambda raw: raw + b"!", default=b"hi"
        )
        space.commit(c1, txn)
        assert store.get(c1, "fresh") == b"hi!"

    def test_abort_discards_and_frees_regions(self, setup):
        _, c1, store, space = setup
        store.put(c1, "k", b"keep")
        txn = space.begin(c1)
        store.txn_multiput(c1, space, txn, [("k", b"drop")])
        space.abort(c1, txn)
        assert store.get(c1, "k") == b"keep"
        assert not txn.kv_puts or txn.state == "aborted"

    def test_rival_commit_aborts_conflicting_update(self, setup):
        cluster, c1, store, space = setup
        store.put(c1, "x", b"0")
        c2 = cluster.client()
        txn = space.begin(c1)
        store.txn_get(c1, space, txn, "x")

        rival = space.begin(c2)
        store.txn_multiput(c2, space, rival, [("x", b"1")])
        space.commit(c2, rival)

        with pytest.raises(TxnConflictError):
            store.txn_multiput(c1, space, txn, [("x", b"2")])
            space.commit(c1, txn)
        # run() drives the retry to success.
        space.run(
            c1,
            lambda t: store.txn_multiput(c1, space, t, [("x", b"2")]),
        )
        assert store.get(c1, "x") == b"2"

    def test_mixed_cells_and_kv_commit_together(self, setup):
        cluster, c1, store, space = setup
        (cell,) = seed_cells(cluster, space, c1, 1)
        txn = space.begin(c1)
        space.write(c1, txn, cell, b"C" * 8)
        store.txn_multiput(c1, space, txn, [("both", b"yes")])
        space.commit(c1, txn)
        assert c1.read_verified(cell, 8)[1] == b"C" * 8
        assert store.get(c1, "both") == b"yes"


class TestKvCrashRecovery:
    def _crash_after_seal(self, setup):
        cluster, victim, store, space = setup
        store.put(victim, "bal", b"100")

        def hook(at, client):
            if at == "after_seal":
                space.crash_hook = None
                client.crash()

        space.crash_hook = hook
        txn = space.begin(victim)
        store.txn_multiput(victim, space, txn, [("bal", b"42"), ("new", b"n")])
        with pytest.raises(FabricError):
            space.commit(victim, txn)
        return cluster, victim, store, space

    def test_sealed_kv_rolls_forward(self, setup):
        cluster, victim, store, space = self._crash_after_seal(setup)
        surgeon = cluster.client("surgeon")
        report = space.recover(
            surgeon, victim.client_id, stores={store.txn_tag: store}
        )
        assert report.action == "rollforward"
        assert report.kv_replayed == 2
        assert store.get(surgeon, "bal") == b"42"
        assert store.get(surgeon, "new") == b"n"

    def test_recover_without_store_mapping_raises(self, setup):
        cluster, victim, store, space = self._crash_after_seal(setup)
        surgeon = cluster.client("surgeon")
        with pytest.raises(ValueError, match="store tag"):
            space.recover(surgeon, victim.client_id)
