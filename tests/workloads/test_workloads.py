"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    Hotspot,
    MetricStream,
    OperationMix,
    OpKind,
    READ_ONLY,
    Sequential,
    Uniform,
    Zipf,
    generate,
)


class TestKeyDistributions:
    def test_uniform_in_range(self):
        keys = Uniform(1000, seed=1).sample(500)
        assert keys.min() >= 0 and keys.max() < 1000

    def test_seeded_determinism(self):
        a = Uniform(1000, seed=5).sample(100)
        b = Uniform(1000, seed=5).sample(100)
        assert (a == b).all()

    def test_sequential_wraps(self):
        dist = Sequential(10)
        assert dist.sample(12).tolist() == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1]

    def test_zipf_is_skewed(self):
        keys = Zipf(10_000, seed=2, s=1.2).sample(5_000)
        _, counts = np.unique(keys, return_counts=True)
        top = np.sort(counts)[::-1]
        # The hottest key gets far more than a uniform share.
        assert top[0] > 5_000 / 10_000 * 20

    def test_zipf_validates_exponent(self):
        with pytest.raises(ValueError):
            Zipf(100, s=1.0)

    def test_hotspot_concentration(self):
        dist = Hotspot(10_000, seed=3, hot_fraction=0.01, hot_probability=0.9)
        keys = dist.sample(5_000)
        hot = (keys < dist.hot_keys).mean()
        assert 0.85 < hot < 0.95

    def test_sample_unique(self):
        keys = Uniform(1000, seed=4).sample_unique(500)
        assert len(set(keys.tolist())) == 500

    def test_sample_unique_overflow(self):
        with pytest.raises(ValueError):
            Uniform(10).sample_unique(11)

    def test_keyspace_validated(self):
        with pytest.raises(ValueError):
            Uniform(0)


class TestOperationMix:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OperationMix(read=0.5, update=0.1, insert=0.1)

    def test_read_only(self):
        ops = list(generate(READ_ONLY, Uniform(100, seed=1), 50))
        assert all(op.kind is OpKind.READ for op in ops)

    def test_fractions_roughly_hold(self):
        mix = OperationMix(read=0.6, update=0.2, insert=0.2)
        ops = list(generate(mix, Uniform(100, seed=1), 2_000))
        reads = sum(op.kind is OpKind.READ for op in ops) / len(ops)
        assert 0.55 < reads < 0.65

    def test_count(self):
        assert len(list(generate(READ_ONLY, Uniform(10, seed=0), 123))) == 123

    def test_fresh_keys_drive_inserts(self):
        mix = OperationMix(read=0.0, update=0.0, insert=1.0)
        ops = list(
            generate(
                mix,
                Uniform(10, seed=1),
                100,
                fresh_keys=Uniform(10_000, seed=2),
            )
        )
        assert any(op.key >= 10 for op in ops)


class TestMetricStream:
    def test_samples_in_range(self):
        stream = MetricStream(bins=100, seed=1)
        samples = stream.samples(2_000)
        assert samples.min() >= 0 and samples.max() < 100

    def test_tail_fraction_controlled(self):
        stream = MetricStream(bins=100, spike_probability=0.05, seed=2)
        samples = stream.samples(20_000)
        tail = (samples >= stream.tail_start).mean()
        assert 0.03 < tail < 0.08

    def test_quiet_stream_rarely_alarms(self):
        stream = MetricStream(bins=100, spike_probability=0.0, mean=40, std=5, seed=3)
        samples = stream.samples(10_000)
        assert (samples >= stream.tail_start).mean() < 0.001

    def test_determinism(self):
        a = MetricStream(seed=9).samples(100)
        b = MetricStream(seed=9).samples(100)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricStream(bins=1)
        with pytest.raises(ValueError):
            MetricStream(spike_probability=2.0)
