"""Unit tests for the YCSB workload presets."""

import pytest

from repro.workloads import OpKind, ycsb_names, ycsb_operations, ycsb_workload


class TestPresets:
    def test_supported_names(self):
        assert ycsb_names() == ["A", "B", "C", "D", "E", "F"]

    def test_lowercase_accepted(self):
        assert ycsb_workload("a").name == "A"

    def test_e_emits_scans(self):
        ops = list(ycsb_operations("E", 100, 1_000, seed=4, max_scan=50))
        scans = [op for op in ops if op.kind is OpKind.SCAN]
        inserts = [op for op in ops if op.kind is OpKind.INSERT]
        assert len(scans) + len(inserts) == len(ops)
        assert 0.9 < len(scans) / len(ops) <= 1.0
        assert all(1 <= op.value <= 50 for op in scans)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            ycsb_workload("Z")

    def test_c_is_read_only(self):
        ops = list(ycsb_operations("C", 100, 200, seed=1))
        assert all(op.kind is OpKind.READ for op in ops)

    def test_a_is_half_updates(self):
        ops = list(ycsb_operations("A", 100, 2_000, seed=1))
        updates = sum(op.kind is OpKind.UPDATE for op in ops) / len(ops)
        assert 0.45 < updates < 0.55

    def test_d_inserts_fresh_keys(self):
        ops = list(ycsb_operations("D", 100, 2_000, seed=1))
        inserts = [op for op in ops if op.kind is OpKind.INSERT]
        assert inserts
        assert all(op.key >= 100 for op in inserts)  # beyond the keyspace

    def test_zipfian_presets_skew(self):
        ops = list(ycsb_operations("B", 10_000, 3_000, seed=2))
        reads = [op.key for op in ops if op.kind is OpKind.READ]
        from collections import Counter

        top = Counter(reads).most_common(1)[0][1]
        assert top > len(reads) / 10_000 * 20  # far above a uniform share

    def test_deterministic(self):
        a = [(op.kind, op.key) for op in ycsb_operations("A", 50, 100, seed=9)]
        b = [(op.kind, op.key) for op in ycsb_operations("A", 50, 100, seed=9)]
        assert a == b

    def test_count(self):
        assert len(list(ycsb_operations("F", 10, 137, seed=0))) == 137
